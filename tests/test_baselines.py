"""Tests for the baseline routers."""

import numpy as np
import pytest

from repro.mesh.mesh import Mesh
from repro.mesh.paths import path_length
from repro.routing.baselines import (
    AccessTreeRouter,
    DimensionOrderRouter,
    GreedyMinCongestionRouter,
    RandomDimOrderRouter,
    ShortestPathRouter,
    ValiantRouter,
)
from repro.routing.registry import available_routers, make_router
from repro.workloads.generators import random_pairs
from repro.workloads.permutations import transpose


@pytest.fixture
def mesh():
    return Mesh((16, 16))


@pytest.fixture
def problem(mesh):
    return random_pairs(mesh, 40, seed=0)


ALL_BASELINES = [
    DimensionOrderRouter,
    RandomDimOrderRouter,
    ValiantRouter,
    AccessTreeRouter,
    ShortestPathRouter,
    GreedyMinCongestionRouter,
]


@pytest.mark.parametrize("cls", ALL_BASELINES)
def test_all_baselines_produce_valid_paths(cls, problem):
    result = cls().route(problem, seed=1)
    assert result.validate()


@pytest.mark.parametrize("cls", ALL_BASELINES)
def test_all_baselines_valid_3d(cls):
    mesh = Mesh((4, 4, 4))
    problem = random_pairs(mesh, 20, seed=1)
    result = cls().route(problem, seed=2)
    assert result.validate()


class TestDimensionOrder:
    def test_stretch_one(self, problem):
        assert DimensionOrderRouter().route(problem, seed=0).stretch == 1.0
        assert RandomDimOrderRouter().route(problem, seed=0).stretch == 1.0

    def test_deterministic(self, problem):
        r = DimensionOrderRouter()
        a = r.route(problem, seed=0)
        b = r.route(problem, seed=999)
        for pa, pb in zip(a.paths, b.paths):
            np.testing.assert_array_equal(pa, pb)

    def test_custom_order_name(self):
        assert DimensionOrderRouter(order=(1, 0)).name == "dim-order-10"

    def test_transpose_congestion_blowup(self, mesh):
        """XY routing on transpose funnels Theta(m) paths through the
        diagonal — congestion ~ m while C* ~ const."""
        result = DimensionOrderRouter().route(transpose(mesh), seed=0)
        assert result.congestion >= mesh.sides[0] - 2


class TestValiant:
    def test_unbounded_stretch_on_neighbors(self, mesh):
        """Valiant sends adjacent-destination packets across the mesh."""
        from repro.workloads.generators import nearest_neighbor

        result = ValiantRouter().route(nearest_neighbor(mesh, seed=1), seed=2)
        assert result.stretch > 8  # paths of length ~m for distance-1 pairs

    def test_path_through_intermediate(self, mesh):
        router = ValiantRouter(drop_cycles=False)
        rng = np.random.default_rng(0)
        p = router.select_path(mesh, 0, 1, rng)
        assert p[0] == 0 and p[-1] == 1

    def test_trivial(self, mesh):
        p = ValiantRouter().select_path(mesh, 5, 5, np.random.default_rng(0))
        assert p.tolist() == [5]


class TestAccessTree:
    def test_is_hierarchical_without_bridges(self):
        router = AccessTreeRouter()
        assert router.use_bridges is False
        assert router.name == "access-tree"

    def test_center_straddling_pair_crosses_root(self, mesh):
        """Without bridges, adjacent nodes straddling the center meet at
        the root: expected path length Theta(m) for distance 1."""
        router = AccessTreeRouter()
        rng = np.random.default_rng(3)
        s, t = mesh.node(7, 8), mesh.node(8, 8)
        lengths = [
            path_length(router.select_path(mesh, s, t, rng)) for _ in range(30)
        ]
        assert max(lengths) > 8

    def test_bridges_beat_tree_on_straddling_pair(self, mesh):
        from repro.core.path_selection import HierarchicalRouter

        tree = AccessTreeRouter()
        graph = HierarchicalRouter()
        rng = np.random.default_rng(4)
        s, t = mesh.node(7, 8), mesh.node(8, 8)
        tree_len = np.mean(
            [path_length(tree.select_path(mesh, s, t, rng)) for _ in range(50)]
        )
        graph_len = np.mean(
            [path_length(graph.select_path(mesh, s, t, rng)) for _ in range(50)]
        )
        assert graph_len * 2 < tree_len


class TestShortestPath:
    def test_stretch_one(self, problem):
        assert ShortestPathRouter().route(problem, seed=0).stretch == 1.0

    def test_graph_cached(self, mesh):
        r = ShortestPathRouter()
        r.select_path(mesh, 0, 5, np.random.default_rng(0))
        assert mesh in r._graph_cache


class TestGreedyOffline:
    def test_beats_deterministic_on_transpose(self):
        mesh = Mesh((8, 8))
        prob = transpose(mesh)
        greedy = GreedyMinCongestionRouter().route(prob, seed=0)
        xy = DimensionOrderRouter().route(prob, seed=0)
        assert greedy.congestion < xy.congestion

    def test_select_path_not_supported(self, mesh):
        with pytest.raises(NotImplementedError):
            GreedyMinCongestionRouter().select_path(
                mesh, 0, 1, np.random.default_rng(0)
            )

    def test_no_shuffle_deterministic(self):
        mesh = Mesh((8, 8))
        prob = random_pairs(mesh, 15, seed=5)
        r = GreedyMinCongestionRouter(shuffle=False)
        a = r.route(prob, seed=1)
        b = r.route(prob, seed=2)
        for pa, pb in zip(a.paths, b.paths):
            np.testing.assert_array_equal(pa, pb)


class TestRegistry:
    def test_available(self):
        names = available_routers()
        assert "hierarchical" in names
        assert "access-tree" in names
        assert "valiant" in names

    def test_make_router_all(self, problem):
        for name in available_routers():
            router = make_router(name)
            result = router.route(problem, seed=0)
            assert result.validate()

    def test_make_router_kwargs(self):
        router = make_router("hierarchical", bit_mode="recycled")
        assert router.bit_mode == "recycled"

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_router("nope")
