"""Tests for routing problems, results and the oblivious routing protocol."""

import numpy as np
import pytest

from repro.core.path_selection import HierarchicalRouter
from repro.mesh.mesh import Mesh
from repro.routing.base import RoutingProblem, RoutingResult
from repro.workloads.generators import random_pairs


@pytest.fixture
def mesh():
    return Mesh((8, 8))


class TestRoutingProblem:
    def test_construction(self, mesh):
        p = RoutingProblem(mesh, np.asarray([0, 1]), np.asarray([5, 6]), "t")
        assert p.num_packets == 2
        assert len(p) == 2
        assert list(p.pairs()) == [(0, 5), (1, 6)]

    def test_shape_mismatch(self, mesh):
        with pytest.raises(ValueError):
            RoutingProblem(mesh, np.asarray([0, 1]), np.asarray([5]))

    def test_out_of_range(self, mesh):
        with pytest.raises(ValueError):
            RoutingProblem(mesh, np.asarray([0]), np.asarray([64]))
        with pytest.raises(ValueError):
            RoutingProblem(mesh, np.asarray([-1]), np.asarray([0]))

    def test_distances_and_max(self, mesh):
        p = RoutingProblem(mesh, np.asarray([0, 0]), np.asarray([63, 1]))
        assert p.distances.tolist() == [14, 1]
        assert p.max_distance == 14

    def test_empty_problem(self, mesh):
        p = RoutingProblem(mesh, np.asarray([], dtype=int), np.asarray([], dtype=int))
        assert p.num_packets == 0
        assert p.max_distance == 0

    def test_subproblem(self, mesh):
        p = RoutingProblem(mesh, np.asarray([0, 1, 2]), np.asarray([5, 6, 7]), "x")
        sub = p.subproblem([0, 2])
        assert sub.num_packets == 2
        assert list(sub.pairs()) == [(0, 5), (2, 7)]

    def test_describe(self, mesh):
        p = RoutingProblem(mesh, np.asarray([0]), np.asarray([63]), "demo")
        text = p.describe()
        assert "demo" in text and "1 packets" in text

    def test_immutable(self, mesh):
        p = RoutingProblem(mesh, np.asarray([0]), np.asarray([1]))
        with pytest.raises(AttributeError):
            p.name = "other"


class TestRoutingResult:
    def test_metrics_cached_and_consistent(self, mesh):
        router = HierarchicalRouter()
        problem = random_pairs(mesh, 25, seed=0)
        res = router.route(problem, seed=0)
        assert res.congestion == int(res.edge_loads.max())
        assert res.dilation == max(len(p) - 1 for p in res.paths)
        assert res.stretch == np.nanmax(res.stretches)
        assert res.total_path_length == sum(len(p) - 1 for p in res.paths)

    def test_path_count_enforced(self, mesh):
        problem = random_pairs(mesh, 3, seed=1)
        with pytest.raises(ValueError):
            RoutingResult(problem, [np.asarray([0, 1])], "x")

    def test_validate_detects_bad_path(self, mesh):
        problem = RoutingProblem(mesh, np.asarray([0]), np.asarray([2]))
        bad = RoutingResult(problem, [np.asarray([0, 2])], "bad")
        assert not bad.validate()

    def test_summary(self, mesh):
        router = HierarchicalRouter()
        res = router.route(random_pairs(mesh, 5, seed=2), seed=0)
        text = res.summary()
        assert "C=" in text and "stretch=" in text


class TestObliviousness:
    def test_other_paths_unchanged_when_one_packet_changes(self, mesh):
        """The structural oblivious property: packet i's path depends only
        on (s_i, t_i) and its own random stream — changing packet 0's
        destination must leave every other packet's path identical."""
        router = HierarchicalRouter()
        base = random_pairs(mesh, 20, seed=3)
        dests2 = base.dests.copy()
        dests2[0] = (dests2[0] + 7) % mesh.n
        if dests2[0] == base.sources[0]:
            dests2[0] = (dests2[0] + 1) % mesh.n
        altered = RoutingProblem(mesh, base.sources, dests2, "altered")
        a = router.route(base, seed=99)
        b = router.route(altered, seed=99)
        for i in range(1, 20):
            np.testing.assert_array_equal(a.paths[i], b.paths[i])

    def test_is_oblivious_flags(self):
        from repro.routing.baselines import (
            GreedyMinCongestionRouter,
            ValiantRouter,
        )

        assert HierarchicalRouter.is_oblivious
        assert ValiantRouter.is_oblivious
        assert not GreedyMinCongestionRouter.is_oblivious
