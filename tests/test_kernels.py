"""The kernel tier's contract: byte-identity across backends, always.

Three layers of assurance, mirroring docs/KERNELS.md:

1. **Pairwise equivalence** — every kernel in
   :data:`repro.kernels.KERNEL_NAMES` runs on randomized inputs under
   both tiers and the outputs must match to the last byte (skipped when
   numba is absent; CI runs it with numba installed).
2. **Referee checks** — the numpy tier (the *definition* of each kernel)
   is fuzzed against the independent scalar oracles of
   :mod:`repro.verify.oracles` and the scalar primitives they restate.
3. **End-to-end bytes** — routed results under a forced backend must
   reproduce the committed golden hash matrix, so backend selection can
   never change a path.

Plus the plumbing: backend selection (env + runtime), graceful
degradation when numba is missing, dispatch counters, and the
``kernels.backend`` profiler annotation.
"""

from __future__ import annotations

import json
import subprocess
import sys
import warnings
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.golden.regenerate_goldens import cell_hash, golden_cases

from repro import kernels
from repro.kernels import _numpy as np_tier
from repro.mesh.mesh import Mesh
from repro.mesh.paths import remove_cycles
from repro.verify.oracles import oracle_alive_bfs, oracle_remove_cycles

HAVE_NUMBA = "numba" in kernels.available_backends()
needs_numba = pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
GOLDEN_PATH = Path(__file__).parent / "golden" / "path_hashes.json"


# ---------------------------------------------------------------------------
# Randomized inputs, one generator per kernel (shared by both backends).
# ---------------------------------------------------------------------------
def _csr_collection(rng, n_paths=40, max_len=30, n_ids=12):
    lens = rng.integers(1, max_len + 1, size=n_paths)
    offsets = np.zeros(n_paths + 1, dtype=np.int64)
    np.cumsum(lens, out=offsets[1:])
    nodes = rng.integers(0, n_ids, size=int(offsets[-1])).astype(np.int64)
    return nodes, offsets


def _case_assemble(rng):
    n, per = 13, 6
    counts = rng.integers(0, 5, size=n * per).astype(np.int64)
    values = rng.choice([-16, -1, 1, 16], size=n * per).astype(np.int64)
    lens = counts.reshape(n, per).sum(axis=1) + 1
    starts = np.zeros(n, dtype=np.int64)
    np.cumsum(lens[:-1], out=starts[1:])
    flat_s = rng.integers(0, 256, size=n).astype(np.int64)
    return (values, counts, flat_s, lens, starts, int(lens.sum()))


def _case_decycle(rng):
    return _csr_collection(rng)


def _case_bfs(rng):
    mesh = Mesh((6, 6))
    alive = rng.random(mesh.num_edges) > 0.25
    s, t = rng.integers(0, mesh.n, size=2)
    indptr, heads, _ = mesh.adjacency_csr(alive)
    return (indptr, heads, int(s), int(t), mesh.n)


def _case_fill_box(rng):
    n, k, d = 17, 4, 2
    S = 2 * k - 1
    cs = rng.integers(0, 1 << k, size=(n, d)).astype(np.int64)
    ct = rng.integers(0, 1 << k, size=(n, d)).astype(np.int64)
    u = rng.integers(0, k, size=n).astype(np.int64)
    blo = rng.integers(0, 1 << k, size=(n, d)).astype(np.int64)
    bhi = blo + rng.integers(0, 4, size=(n, d)).astype(np.int64)
    alive = rng.random(n) > 0.2
    box_lo = np.broadcast_to(ct[:, None, :], (n, S, d)).copy()
    box_len = np.ones((n, S, d), dtype=np.int64)
    return (box_lo, box_len, cs, ct, u, blo, bhi, alive, k)


def _case_count(rng):
    return (rng.integers(0, 50, size=400).astype(np.int64), 50)


def _case_node_loads(rng):
    nodes, offsets = _csr_collection(rng, n_ids=25)
    return (nodes, offsets, 25)


def _case_stretch(rng):
    lengths = rng.integers(0, 40, size=60).astype(np.float64)
    dists = rng.integers(0, 10, size=60).astype(np.float64)  # zeros included
    return (lengths, dists)


CASE_GENERATORS = {
    "assemble_paths": _case_assemble,
    "decycle_paths": _case_decycle,
    "bfs_parents": _case_bfs,
    "fill_box_chains": _case_fill_box,
    "count_loads": _case_count,
    "node_loads_csr": _case_node_loads,
    "stretch_ratios": _case_stretch,
}

#: kernels that mutate arguments in place instead of returning arrays
INPLACE = {"fill_box_chains": (0, 1)}


def _run(table, name, args):
    if name in INPLACE:
        args = tuple(
            a.copy() if i in INPLACE[name] else a for i, a in enumerate(args)
        )
        table[name](*args)
        return tuple(args[i] for i in INPLACE[name])
    out = table[name](*args)
    return out if isinstance(out, tuple) else (out,)


def test_case_generators_cover_every_kernel():
    assert set(CASE_GENERATORS) == set(kernels.KERNEL_NAMES)


@needs_numba
@pytest.mark.parametrize("name", kernels.KERNEL_NAMES)
@pytest.mark.parametrize("seed", range(5))
def test_numba_matches_numpy_bytes(name, seed):
    from repro.kernels import _numba as nb_tier

    rng = np.random.default_rng(1000 * seed + hash(name) % 1000)
    args = CASE_GENERATORS[name](rng)
    got = _run(nb_tier.IMPLS, name, args)
    want = _run(np_tier.IMPLS, name, args)
    assert len(got) == len(want)
    for g, w in zip(got, want):
        if isinstance(g, np.ndarray):
            assert g.dtype == w.dtype
            assert g.tobytes() == w.tobytes()
        else:
            assert g == w


# ---------------------------------------------------------------------------
# The numpy tier vs the scalar referees.
# ---------------------------------------------------------------------------
@settings(max_examples=60)
@given(st.lists(st.lists(st.integers(0, 9), min_size=1, max_size=25),
                min_size=1, max_size=8))
def test_decycle_matches_scalar_and_oracle(raw_paths):
    lens = np.asarray([len(p) for p in raw_paths], dtype=np.int64)
    offsets = np.zeros(lens.size + 1, dtype=np.int64)
    np.cumsum(lens, out=offsets[1:])
    nodes = np.asarray([v for p in raw_paths for v in p], dtype=np.int64)
    out_nodes, out_offsets, changed = np_tier.decycle_paths(nodes, offsets)
    n_changed = 0
    for i, p in enumerate(raw_paths):
        got = out_nodes[out_offsets[i]:out_offsets[i + 1]].tolist()
        arr = np.asarray(p, dtype=np.int64)
        assert got == remove_cycles(arr).tolist()
        assert got == oracle_remove_cycles(p)
        n_changed += len(got) != len(p)
    assert changed == n_changed


def test_decycle_identity_fast_path_returns_same_objects():
    nodes = np.arange(12, dtype=np.int64)
    offsets = np.asarray([0, 4, 8, 12], dtype=np.int64)
    out_nodes, out_offsets, changed = np_tier.decycle_paths(nodes, offsets)
    assert changed == 0
    assert out_nodes is nodes and out_offsets is offsets


@settings(max_examples=40)
@given(st.integers(0, 10**9))
def test_bfs_kernel_matches_oracle(seed):
    rng = np.random.default_rng(seed)
    mesh = Mesh((5, 5))
    alive = rng.random(mesh.num_edges) > 0.3
    s, t = int(rng.integers(mesh.n)), int(rng.integers(mesh.n))
    from repro.faults.router import shortest_alive_path

    got = shortest_alive_path(mesh, s, t, alive)
    want = oracle_alive_bfs(mesh, s, t, alive)
    if want is None:
        assert got is None
    else:
        assert got is not None and got.tolist() == want


@settings(max_examples=40)
@given(st.integers(0, 10**9))
def test_count_and_stretch_kernels_match_direct_numpy(seed):
    rng = np.random.default_rng(seed)
    ids, minlength = _case_count(rng)
    np.testing.assert_array_equal(
        np_tier.count_loads(ids, minlength),
        np.bincount(ids, minlength=minlength).astype(np.int64),
    )
    lengths, dists = _case_stretch(rng)
    got = np_tier.stretch_ratios(lengths, dists)
    want = np.where(dists > 0, lengths / np.maximum(dists, 1), np.nan)
    np.testing.assert_array_equal(got, want)


@settings(max_examples=40)
@given(st.integers(0, 10**9))
def test_node_loads_kernel_matches_python_sets(seed):
    rng = np.random.default_rng(seed)
    nodes, offsets, n = _case_node_loads(rng)
    want = np.zeros(n, dtype=np.int64)
    for p in range(offsets.size - 1):
        for v in set(nodes[offsets[p]:offsets[p + 1]].tolist()):
            want[v] += 1
    np.testing.assert_array_equal(np_tier.node_loads_csr(nodes, offsets, n), want)


@settings(max_examples=40)
@given(st.integers(0, 10**9))
def test_assemble_kernel_matches_python_integration(seed):
    rng = np.random.default_rng(seed)
    values, counts, flat_s, lens, starts, total = _case_assemble(rng)
    got = np_tier.assemble_paths(values, counts, flat_s, lens, starts, total)
    per = values.size // flat_s.size
    want = []
    for p in range(flat_s.size):
        cur = int(flat_s[p])
        want.append(cur)
        for k in range(p * per, (p + 1) * per):
            for _ in range(int(counts[k])):
                cur += int(values[k])
                want.append(cur)
    np.testing.assert_array_equal(got, np.asarray(want, dtype=np.int64))


# ---------------------------------------------------------------------------
# End-to-end bytes: forced backends must reproduce the committed goldens.
# ---------------------------------------------------------------------------
GOLDEN_CASES = dict(golden_cases())
#: one cell per mesh family — cheap always-on check under a forced backend
SAMPLE_KEYS = sorted(
    {key.split("|")[1]: key for key in sorted(GOLDEN_CASES)}.values()
)


@pytest.mark.parametrize("key", SAMPLE_KEYS)
def test_forced_numpy_backend_reproduces_goldens(key):
    goldens = json.loads(GOLDEN_PATH.read_text())
    with kernels.use_backend("numpy"):
        result = GOLDEN_CASES[key]()
    assert cell_hash(result) == goldens[key]


@needs_numba
@pytest.mark.parametrize(
    "key", sorted(GOLDEN_CASES), ids=lambda k: k.replace("|", " ")
)
def test_numba_backend_reproduces_golden_grid(key):
    goldens = json.loads(GOLDEN_PATH.read_text())
    with kernels.use_backend("numba"):
        result = GOLDEN_CASES[key]()
    assert cell_hash(result) == goldens[key]


# ---------------------------------------------------------------------------
# Backend selection, degradation and telemetry plumbing.
# ---------------------------------------------------------------------------
def test_backend_reporting_is_consistent():
    assert kernels.backend() in kernels.available_backends()
    assert "numpy" in kernels.available_backends()


def test_unknown_backend_raises():
    with pytest.raises(ValueError, match="unknown kernels backend"):
        kernels.set_backend("fortran")


def test_use_backend_restores_previous():
    before = kernels.backend()
    with kernels.use_backend("numpy"):
        assert kernels.backend() == "numpy"
    assert kernels.backend() == before


def test_auto_resolves_to_preferred():
    before = kernels.backend()
    try:
        assert kernels.set_backend("auto") == kernels.available_backends()[0]
    finally:
        kernels.set_backend(before)


@pytest.mark.skipif(HAVE_NUMBA, reason="degradation path needs numba absent")
def test_requesting_numba_without_numba_degrades_with_warning():
    before = kernels.backend()
    try:
        with pytest.warns(RuntimeWarning, match="numba is not installed"):
            active = kernels.set_backend("numba")
        assert active == "numpy"
        assert kernels.backend() == "numpy"
    finally:
        kernels.set_backend(before)


def test_unknown_env_value_warns_and_falls_back_to_auto(monkeypatch):
    before = kernels.backend()
    monkeypatch.setenv("REPRO_KERNELS", "cuda")
    try:
        with pytest.warns(RuntimeWarning, match="unknown REPRO_KERNELS"):
            active = kernels._resolve_from_env()
        assert active == kernels.available_backends()[0]
    finally:
        kernels.set_backend(before)


def test_env_forced_numpy_in_fresh_interpreter():
    out = subprocess.run(
        [sys.executable, "-c",
         "from repro import kernels; print(kernels.backend())"],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": "src", "REPRO_KERNELS": "numpy", "PATH": "/usr/bin:/bin"},
        cwd=Path(__file__).parent.parent,
        check=True,
    )
    assert out.stdout.strip() == "numpy"


def test_dispatch_counters_and_profiler_rollup():
    from repro.obs import Profiler
    from repro.routing.registry import make_router
    from repro.workloads.permutations import transpose

    kernels.reset_dispatch_counts()
    profiler = Profiler()
    router = make_router("hierarchical")
    router.profiler = profiler
    with kernels.use_backend("numpy"):
        router.route(transpose(Mesh((8, 8))), seed=0)
    counts = kernels.dispatch_counts()
    assert counts.get("numpy.assemble_paths", 0) >= 1
    assert counts.get("numpy.decycle_paths", 0) >= 1
    assert profiler.counters.get("kernels.numpy.assemble_paths", 0) >= 1
    assert profiler.annotations["kernels.backend"] == "numpy"
    # annotations survive the snapshot/merge wire format workers use
    clone = Profiler()
    clone.merge_snapshot(profiler.snapshot())
    assert clone.annotations["kernels.backend"] == "numpy"


def test_shard_tasks_pin_the_parent_backend():
    from repro.parallel.worker import ShardTask, _pin_kernels

    assert ShardTask.__dataclass_fields__["kernels_backend"].default is None
    before = kernels.backend()
    try:
        _pin_kernels("numpy")
        assert kernels.backend() == "numpy"
        _pin_kernels(None)  # no-op
        assert kernels.backend() == "numpy"
    finally:
        kernels.set_backend(before)


def test_sharded_route_matches_serial_under_forced_numpy():
    from repro.routing.registry import make_router
    from repro.workloads.permutations import transpose

    problem = transpose(Mesh((8, 8)))
    with kernels.use_backend("numpy"):
        serial = make_router("hierarchical").route(problem, seed=0)
        sharded = make_router("hierarchical").route(problem, seed=0, workers=3)
    assert serial.paths.nodes.tobytes() == sharded.paths.nodes.tobytes()
    assert serial.paths.offsets.tobytes() == sharded.paths.offsets.tobytes()
