"""Tests for bridge-submesh location (Lemmas 3.3 and 4.1)."""

import math

import numpy as np
import pytest

from repro.core.bridges import (
    bridge_height_bound_2d,
    common_ancestor_2d,
    common_ancestor_brute,
    find_bridge,
)
from repro.core.decomposition import Decomposition
from repro.mesh.mesh import Mesh
from repro.mesh.submesh import Submesh


@pytest.fixture
def dec8():
    return Decomposition(Mesh((8, 8)))


@pytest.fixture
def dec16():
    return Decomposition(Mesh((16, 16)))


class TestCommonAncestor2D:
    def test_bridge_contains_both_chains(self, dec16):
        rng = np.random.default_rng(0)
        for _ in range(100):
            s, t = rng.integers(dec16.mesh.n, size=2)
            if s == t:
                continue
            h, bridge = common_ancestor_2d(dec16, int(s), int(t))
            assert bridge.box.contains_submesh(dec16.type1_ancestor(int(s), h - 1))
            assert bridge.box.contains_submesh(dec16.type1_ancestor(int(t), h - 1))

    def test_identical_nodes_rejected(self, dec8):
        with pytest.raises(ValueError):
            common_ancestor_2d(dec8, 3, 3)

    def test_matches_brute_force_exhaustively(self, dec8):
        """Arithmetic and exhaustive searches agree on the meeting height
        for every pair of the 8x8 mesh."""
        n = dec8.mesh.n
        for s in range(n):
            for t in range(s + 1, n):
                h_fast, _ = common_ancestor_2d(dec8, s, t)
                h_brute, _ = common_ancestor_brute(dec8, s, t)
                assert h_fast == h_brute

    def test_lemma_3_3_height_bound(self, dec16):
        """Height <= ceil(log2 dist) + 2 for every sampled pair."""
        mesh = dec16.mesh
        rng = np.random.default_rng(1)
        for _ in range(300):
            s, t = rng.integers(mesh.n, size=2)
            if s == t:
                continue
            dist = int(mesh.distance(int(s), int(t)))
            h, _ = common_ancestor_2d(dec16, int(s), int(t))
            assert h <= bridge_height_bound_2d(dist)

    def test_lemma_3_3_exhaustive_8x8(self, dec8):
        mesh = dec8.mesh
        for s in range(mesh.n):
            for t in range(mesh.n):
                if s == t:
                    continue
                dist = int(mesh.distance(s, t))
                h, _ = common_ancestor_2d(dec8, s, t)
                assert h <= bridge_height_bound_2d(dist)

    def test_adjacent_center_pair_uses_bridge(self, dec16):
        """Adjacent nodes straddling the top-level cut: the access *tree*
        meets only at the root, the bridge meets at constant height."""
        mesh = dec16.mesh
        s, t = mesh.node(7, 5), mesh.node(8, 5)
        h, bridge = common_ancestor_2d(dec16, s, t)
        assert h <= 3  # Lemma 3.3: dist = 1 -> height <= 2 (+1 headroom)
        assert bridge.type_index == 2

    def test_same_cell_pair_meets_in_type1(self, dec16):
        mesh = dec16.mesh
        s, t = mesh.node(0, 0), mesh.node(1, 1)
        h, bridge = common_ancestor_2d(dec16, s, t)
        assert bridge.type_index == 1
        assert h == 1

    def test_bound_helper(self):
        assert bridge_height_bound_2d(1) == 2
        assert bridge_height_bound_2d(2) == 3
        assert bridge_height_bound_2d(5) == 5
        with pytest.raises(ValueError):
            bridge_height_bound_2d(0)


class TestFindBridge:
    def test_contains_both_boxes(self, dec16):
        mesh = dec16.mesh
        rng = np.random.default_rng(2)
        for _ in range(60):
            s, t = (int(x) for x in rng.integers(mesh.n, size=2))
            if s == t:
                continue
            dist = int(mesh.distance(s, t))
            h_prime = min(max(math.ceil(math.log2(dist)), 0), dec16.k - 1)
            m1 = dec16.type1_ancestor(s, h_prime)
            m3 = dec16.type1_ancestor(t, h_prime)
            h, bridge = find_bridge(dec16, m1, m3, h_prime + 1)
            assert h >= h_prime + 1
            assert bridge.box.contains_submesh(m1)
            assert bridge.box.contains_submesh(m3)

    def test_side_condition_enforced(self, dec16):
        mesh = dec16.mesh
        s, t = mesh.node(7, 7), mesh.node(8, 8)
        m1 = dec16.type1_ancestor(s, 1)
        m3 = dec16.type1_ancestor(t, 1)
        h, bridge = find_bridge(dec16, m1, m3, 2, require_double_side=2)
        assert all(side >= 4 for side in bridge.box.sides)

    def test_bridge_height_scales_with_distance(self, dec16):
        """Lemma 4.1 consequence: bridge side is O(d * dist)."""
        mesh = dec16.mesh
        rng = np.random.default_rng(5)
        for _ in range(60):
            s, t = (int(x) for x in rng.integers(mesh.n, size=2))
            if s == t:
                continue
            dist = int(mesh.distance(s, t))
            h_prime = min(max(math.ceil(math.log2(dist)), 0), dec16.k - 1)
            m1 = dec16.type1_ancestor(s, h_prime)
            m3 = dec16.type1_ancestor(t, h_prime)
            h, bridge = find_bridge(
                dec16, m1, m3, h_prime + 1, require_double_side=1 << h_prime
            )
            # bridge cell side 2^h <= 8 * (d+1) * dist with d = 2 (generous)
            assert (1 << h) <= 24 * dist

    def test_min_height_above_root_rejected(self, dec16):
        whole = Submesh.whole(dec16.mesh)
        with pytest.raises(ValueError):
            find_bridge(dec16, whole, whole, dec16.k + 1)

    def test_root_always_works(self, dec16):
        mesh = dec16.mesh
        m1 = dec16.type1_ancestor(mesh.node(0, 0), 3)
        m3 = dec16.type1_ancestor(mesh.node(15, 15), 3)
        h, bridge = find_bridge(dec16, m1, m3, 4, require_double_side=8)
        assert h == dec16.k
        assert bridge.box == Submesh.whole(mesh)


class TestMultishiftBridges:
    def test_3d_bridge_exists_at_low_height(self):
        """Lemma 4.1: a shifted type contains any small region at height
        with cell side >= 2(d+1) * span."""
        dec = Decomposition(Mesh((16, 16, 16)), scheme="multishift")
        mesh = dec.mesh
        rng = np.random.default_rng(7)
        for _ in range(40):
            s, t = (int(x) for x in rng.integers(mesh.n, size=2))
            if s == t:
                continue
            dist = int(mesh.distance(s, t))
            h_prime = min(max(math.ceil(math.log2(dist)), 0), dec.k - 1)
            m1 = dec.type1_ancestor(s, h_prime)
            m3 = dec.type1_ancestor(t, h_prime)
            h, bridge = find_bridge(
                dec, m1, m3, h_prime + 1, require_double_side=1 << h_prime
            )
            assert bridge.box.contains_submesh(m1)
            assert bridge.box.contains_submesh(m3)
            assert all(side >= 2 * (1 << h_prime) for side in bridge.box.sides)
