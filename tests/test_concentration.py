"""Tests for the empirical concentration analysis (Theorem 3.9 'whp')."""

import numpy as np
import pytest

from repro.analysis.concentration import congestion_distribution, tail_fraction
from repro.core.path_selection import HierarchicalRouter
from repro.mesh.mesh import Mesh
from repro.workloads.permutations import transpose


@pytest.fixture(scope="module")
def dist():
    mesh = Mesh((16, 16))
    return congestion_distribution(
        HierarchicalRouter(), transpose(mesh), num_seeds=40
    )


class TestDistribution:
    def test_summary_fields(self, dist):
        assert dist["runs"] == 40
        assert dist["min"] <= dist["median"] <= dist["max"]
        assert dist["samples"].size == 40

    def test_congestion_concentrates(self, dist):
        """The whp content of Theorem 3.9: independent path choices give a
        tight max-load distribution — the extreme run is within a small
        factor of the median."""
        assert dist["max/median"] <= 1.6
        assert dist["std"] <= 0.25 * dist["mean"]

    def test_tail_fraction(self, dist):
        samples = dist["samples"]
        assert tail_fraction(samples, dist["max"]) == 0.0
        assert tail_fraction(samples, dist["min"] - 1) == 1.0
        assert tail_fraction(samples, 1.3 * dist["median"]) <= 0.2

    def test_tail_fraction_empty(self):
        assert tail_fraction(np.asarray([]), 5) == 0.0

    def test_needs_at_least_one_seed(self):
        mesh = Mesh((8, 8))
        with pytest.raises(ValueError):
            congestion_distribution(
                HierarchicalRouter(), transpose(mesh), num_seeds=0
            )
