"""The process-wide cache: sharing, accounting, invalidation, disabling."""

import threading

import numpy as np
import pytest

from repro import cache
from repro.core.path_selection import HierarchicalRouter
from repro.mesh.mesh import Mesh
from repro.workloads.permutations import transpose


@pytest.fixture(autouse=True)
def clean_cache():
    cache.configure(enabled=True)
    cache.invalidate()
    cache.reset_stats()
    yield
    cache.configure(enabled=True)
    cache.invalidate()
    cache.reset_stats()


class TestMemo:
    def test_miss_then_hit(self):
        calls = []
        value = cache.memo("t", "k", lambda: calls.append(1) or "v")
        again = cache.memo("t", "k", lambda: calls.append(1) or "v2")
        assert value == again == "v"
        assert len(calls) == 1
        st = cache.stats()
        assert st.hits == 1 and st.misses == 1 and st.entries == 1

    def test_distinct_keys_distinct_entries(self):
        cache.memo("t", 1, lambda: "a")
        cache.memo("t", 2, lambda: "b")
        cache.memo("u", 1, lambda: "c")
        assert cache.stats().entries == 3

    def test_invalidate_all(self):
        cache.memo("t", 1, lambda: "a")
        cache.memo("u", 2, lambda: "b")
        assert cache.invalidate() == 2
        assert cache.stats().entries == 0
        assert cache.stats().invalidations == 2

    def test_invalidate_by_kind(self):
        cache.memo("t", 1, lambda: "a")
        cache.memo("u", 2, lambda: "b")
        assert cache.invalidate("t") == 1
        assert cache.stats().entries == 1
        # the surviving entry still hits
        cache.memo("u", 2, lambda: "fresh")
        assert cache.stats().hits == 1

    def test_disabled_rebuilds_every_call(self):
        cache.configure(enabled=False)
        calls = []
        cache.memo("t", "k", lambda: calls.append(1) or len(calls))
        cache.memo("t", "k", lambda: calls.append(1) or len(calls))
        assert len(calls) == 2
        assert cache.stats().entries == 0
        assert not cache.enabled()

    def test_hit_rate(self):
        assert cache.stats().hit_rate == 0.0
        cache.memo("t", "k", lambda: 1)
        cache.memo("t", "k", lambda: 1)
        assert cache.stats().hit_rate == pytest.approx(0.5)

    def test_thread_shared_build(self):
        results = []

        def worker():
            results.append(cache.memo("t", "k", lambda: object()))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(r is results[0] for r in results)


class TestGetDecomposition:
    def test_shared_across_equal_meshes(self):
        d1 = cache.get_decomposition(Mesh((8, 8)))
        d2 = cache.get_decomposition(Mesh((8, 8)))
        assert d1 is d2

    def test_auto_resolves_to_concrete_scheme(self):
        d1 = cache.get_decomposition(Mesh((8, 8)), "auto")
        d2 = cache.get_decomposition(Mesh((8, 8)), "paper2d")
        assert d1 is d2
        assert cache.resolve_scheme(Mesh((8, 8)), "auto") == "paper2d"
        assert cache.resolve_scheme(Mesh((4, 4, 4)), "auto") == "multishift"

    def test_schemes_do_not_collide(self):
        d1 = cache.get_decomposition(Mesh((8, 8)), "paper2d")
        d2 = cache.get_decomposition(Mesh((8, 8)), "multishift")
        assert d1 is not d2

    def test_routers_share_one_decomposition(self):
        mesh = Mesh((8, 8))
        r1 = HierarchicalRouter()
        r2 = HierarchicalRouter()
        assert r1.decomposition(mesh) is r2.decomposition(mesh)

    def test_routing_with_cache_disabled_still_works(self):
        cache.configure(enabled=False)
        mesh = Mesh((8, 8))
        result = HierarchicalRouter().route(transpose(mesh), seed=0)
        assert result.validate()

    def test_routing_populates_cache(self):
        mesh = Mesh((16, 16))
        HierarchicalRouter().route(transpose(mesh), seed=0)
        st = cache.stats()
        assert st.entries >= 2  # decomposition + sequence tables
        HierarchicalRouter().route(transpose(mesh), seed=1)
        assert cache.stats().hits > st.hits

    def test_invalidation_forces_rebuild(self):
        mesh = Mesh((8, 8))
        d1 = cache.get_decomposition(mesh)
        cache.invalidate("decomposition")
        d2 = cache.get_decomposition(mesh)
        assert d1 is not d2
