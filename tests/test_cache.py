"""The process-wide cache: sharing, accounting, invalidation, disabling."""

import threading

import numpy as np
import pytest

from repro import cache
from repro.core.path_selection import HierarchicalRouter
from repro.mesh.mesh import Mesh
from repro.workloads.permutations import transpose


@pytest.fixture(autouse=True)
def clean_cache():
    cache.configure(enabled=True)
    cache.invalidate()
    cache.reset_stats()
    yield
    cache.configure(enabled=True)
    cache.invalidate()
    cache.reset_stats()


class TestMemo:
    def test_miss_then_hit(self):
        calls = []
        value = cache.memo("t", "k", lambda: calls.append(1) or "v")
        again = cache.memo("t", "k", lambda: calls.append(1) or "v2")
        assert value == again == "v"
        assert len(calls) == 1
        st = cache.stats()
        assert st.hits == 1 and st.misses == 1 and st.entries == 1

    def test_distinct_keys_distinct_entries(self):
        cache.memo("t", 1, lambda: "a")
        cache.memo("t", 2, lambda: "b")
        cache.memo("u", 1, lambda: "c")
        assert cache.stats().entries == 3

    def test_invalidate_all(self):
        cache.memo("t", 1, lambda: "a")
        cache.memo("u", 2, lambda: "b")
        assert cache.invalidate() == 2
        assert cache.stats().entries == 0
        assert cache.stats().invalidations == 1  # one call...
        assert cache.stats().dropped == 2  # ...dropping two entries

    def test_invalidate_by_kind(self):
        cache.memo("t", 1, lambda: "a")
        cache.memo("u", 2, lambda: "b")
        assert cache.invalidate("t") == 1
        assert cache.stats().entries == 1
        # the surviving entry still hits
        cache.memo("u", 2, lambda: "fresh")
        assert cache.stats().hits == 1

    def test_disabled_rebuilds_every_call(self):
        cache.configure(enabled=False)
        calls = []
        cache.memo("t", "k", lambda: calls.append(1) or len(calls))
        cache.memo("t", "k", lambda: calls.append(1) or len(calls))
        assert len(calls) == 2
        assert cache.stats().entries == 0
        assert not cache.enabled()

    def test_hit_rate(self):
        assert cache.stats().hit_rate == 0.0
        cache.memo("t", "k", lambda: 1)
        cache.memo("t", "k", lambda: 1)
        assert cache.stats().hit_rate == pytest.approx(0.5)

    def test_invalidation_counter_is_per_call(self):
        """Regression: ``invalidations`` counts invalidate() *calls*, not
        entries removed (``dropped`` carries the removal count)."""
        for i in range(3):
            cache.memo("t", i, lambda: i)
        assert cache.invalidate() == 3
        st = cache.stats()
        assert st.invalidations == 1
        assert st.dropped == 3
        # an empty invalidate is still one call, zero drops
        assert cache.invalidate() == 0
        st = cache.stats()
        assert st.invalidations == 2
        assert st.dropped == 3
        assert st.to_dict()["dropped"] == 3

    def test_configure_disable_blocks_racing_store(self):
        """Regression (threaded): once configure(enabled=False) returns, no
        racing memo call may insert into the store.  Pre-fix, memo re-read
        ``_enabled`` outside the lock after the factory ran, so an insert
        could land after the disable completed."""
        stop = threading.Event()

        def hammer(k):
            i = 0
            while not stop.is_set():
                cache.memo("race", (k, i % 4), lambda: object())
                i += 1

        threads = [threading.Thread(target=hammer, args=(k,)) for k in range(4)]
        for t in threads:
            t.start()
        try:
            for _ in range(300):
                cache.configure(enabled=True)
                cache.configure(enabled=False)
                # Entries present here were inserted while enabled: drop them.
                cache.invalidate("race")
                # From this point on nothing may be inserted — any entry the
                # second sweep finds was stored *after* the disable returned.
                assert cache.invalidate("race") == 0
        finally:
            stop.set()
            for t in threads:
                t.join()

    def test_disable_completed_during_factory_wins(self):
        """Deterministic regression for the configure race: a memo call
        whose factory is in flight when ``configure(enabled=False)``
        *completes* must not insert afterwards.  Reproduces the exact
        interleaving by gating the victim thread's store-side lock
        acquisition until the disable has returned."""
        at_gate = threading.Event()
        proceed = threading.Event()
        state = {"armed": False}
        victim_holder: list = []
        inner = threading.Lock()

        class GatedLock:
            def __enter__(self):
                if state["armed"] and threading.current_thread() in victim_holder:
                    state["armed"] = False
                    at_gate.set()
                    proceed.wait(timeout=10)
                inner.acquire()

            def __exit__(self, *exc):
                inner.release()

        def factory():
            state["armed"] = True  # gate the *next* (store-side) acquisition
            return "value"

        original = cache._lock
        cache._lock = GatedLock()
        try:
            victim = threading.Thread(target=lambda: cache.memo("race", "k", factory))
            victim_holder.append(victim)
            victim.start()
            assert at_gate.wait(timeout=10)
            # The victim is now past its unlocked work, waiting to store.
            cache.configure(enabled=False)
            proceed.set()
            victim.join(timeout=10)
        finally:
            proceed.set()
            cache._lock = original
        # Nothing may have been inserted after the disable returned.
        assert cache.invalidate("race") == 0

    def test_thread_shared_build(self):
        results = []

        def worker():
            results.append(cache.memo("t", "k", lambda: object()))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(r is results[0] for r in results)


class TestGetDecomposition:
    def test_shared_across_equal_meshes(self):
        d1 = cache.get_decomposition(Mesh((8, 8)))
        d2 = cache.get_decomposition(Mesh((8, 8)))
        assert d1 is d2

    def test_auto_resolves_to_concrete_scheme(self):
        d1 = cache.get_decomposition(Mesh((8, 8)), "auto")
        d2 = cache.get_decomposition(Mesh((8, 8)), "paper2d")
        assert d1 is d2
        assert cache.resolve_scheme(Mesh((8, 8)), "auto") == "paper2d"
        assert cache.resolve_scheme(Mesh((4, 4, 4)), "auto") == "multishift"

    def test_schemes_do_not_collide(self):
        d1 = cache.get_decomposition(Mesh((8, 8)), "paper2d")
        d2 = cache.get_decomposition(Mesh((8, 8)), "multishift")
        assert d1 is not d2

    def test_routers_share_one_decomposition(self):
        mesh = Mesh((8, 8))
        r1 = HierarchicalRouter()
        r2 = HierarchicalRouter()
        assert r1.decomposition(mesh) is r2.decomposition(mesh)

    def test_routing_with_cache_disabled_still_works(self):
        cache.configure(enabled=False)
        mesh = Mesh((8, 8))
        result = HierarchicalRouter().route(transpose(mesh), seed=0)
        assert result.validate()

    def test_routing_populates_cache(self):
        mesh = Mesh((16, 16))
        HierarchicalRouter().route(transpose(mesh), seed=0)
        st = cache.stats()
        assert st.entries >= 2  # decomposition + sequence tables
        HierarchicalRouter().route(transpose(mesh), seed=1)
        assert cache.stats().hits > st.hits

    def test_invalidation_forces_rebuild(self):
        mesh = Mesh((8, 8))
        d1 = cache.get_decomposition(mesh)
        cache.invalidate("decomposition")
        d2 = cache.get_decomposition(mesh)
        assert d1 is not d2


class TestEpochAndWarm:
    """The warm-up handshake vs invalidate() (the PR 3 race, service era)."""

    def test_epoch_bumps_on_every_invalidate(self):
        e0 = cache.epoch()
        cache.invalidate()
        cache.invalidate("anything")
        assert cache.epoch() == e0 + 2

    def test_warm_builds_and_reports_cold_keys(self):
        mesh = Mesh((8, 8))
        key = cache.warmup_key(mesh)
        assert cache.warm([key]) == 1  # cold: built here
        assert cache.warm([key]) == 0  # resident now

    def test_invalidate_during_warm_pass_triggers_repass(self, monkeypatch):
        """Deterministic interleaving: an invalidate() lands after warm()
        built its keys but before its epoch re-check.  The handshake must
        detect the moved epoch and re-run, so on return every key is
        actually resident (a single-pass warm would return with the cache
        empty again — the stale-warm-up race)."""
        mesh = Mesh((8, 8))
        key = cache.warmup_key(mesh)
        original = cache.get_decomposition
        passes = []

        def racing(mesh_arg, scheme="auto"):
            value = original(mesh_arg, scheme)
            if not passes:  # first pass only: invalidate mid-flight
                passes.append(1)
                cache.invalidate()
            return value

        monkeypatch.setattr(cache, "get_decomposition", racing)
        cache.warm([key])
        monkeypatch.undo()
        # the repass happened and left the entry resident
        assert passes == [1]
        assert cache.warm([key]) == 0

    def test_sustained_invalidation_returns_best_effort(self, monkeypatch):
        """An invalidation storm must not livelock warm()."""
        mesh = Mesh((8, 8))
        key = cache.warmup_key(mesh)
        original = cache.get_decomposition
        calls = []

        def always_racing(mesh_arg, scheme="auto"):
            value = original(mesh_arg, scheme)
            calls.append(1)
            cache.invalidate()
            return value

        monkeypatch.setattr(cache, "get_decomposition", always_racing)
        cold = cache.warm([key], max_retries=3)
        monkeypatch.undo()
        assert len(calls) == 4  # initial pass + 3 retries, then gave up
        assert cold == 1  # honest: the key was cold in the last pass too

    def test_gated_invalidate_between_build_and_epoch_check(self):
        """GatedLock-style regression mirroring the configure() races: the
        victim thread's warm() pass completes its builds, then an
        invalidate from the main thread wins the epoch before the
        re-check.  warm() must do a second pass rather than return with
        stale keys."""
        mesh = Mesh((8, 8))
        key = cache.warmup_key(mesh)
        built = threading.Event()
        proceed = threading.Event()
        original = cache.get_decomposition
        state = {"pass": 0}

        def gated(mesh_arg, scheme="auto"):
            value = original(mesh_arg, scheme)
            if state["pass"] == 0:
                state["pass"] = 1
                built.set()  # pass 1 done building; hold before epoch check
                assert proceed.wait(timeout=10)
            return value

        cache.get_decomposition = gated
        try:
            victim = threading.Thread(target=lambda: cache.warm([key]))
            victim.start()
            assert built.wait(timeout=10)
            cache.invalidate()  # lands between build and epoch re-check
            proceed.set()
            victim.join(timeout=10)
            assert not victim.is_alive()
        finally:
            proceed.set()
            cache.get_decomposition = original
        assert cache.warm([key]) == 0  # the repass left it resident
