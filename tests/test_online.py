"""Tests for the online (dynamic-arrival) routing simulation."""

import numpy as np
import pytest

from repro.core.path_selection import HierarchicalRouter
from repro.mesh.mesh import Mesh
from repro.routing.baselines import (
    GreedyMinCongestionRouter,
    RandomDimOrderRouter,
    ValiantRouter,
)
from repro.simulation.online import latency_vs_load, simulate_online


@pytest.fixture
def mesh():
    return Mesh((8, 8))


class TestSimulateOnline:
    def test_everything_delivered(self, mesh):
        stats = simulate_online(
            HierarchicalRouter(), mesh, rate=0.03, steps=100, seed=0
        )
        assert stats.delivered == stats.injected
        assert stats.injected > 0

    def test_zero_rate(self, mesh):
        stats = simulate_online(
            HierarchicalRouter(), mesh, rate=0.0, steps=30, seed=0
        )
        assert stats.injected == 0
        assert stats.delivered == 0
        assert stats.mean_latency == 0.0

    def test_latency_at_least_distance(self, mesh):
        stats = simulate_online(
            RandomDimOrderRouter(), mesh, rate=0.02, steps=100, seed=1
        )
        # stretch-1 router: latency >= distance, so slowdown >= 1
        assert stats.mean_slowdown >= 1.0

    def test_reproducible(self, mesh):
        a = simulate_online(HierarchicalRouter(), mesh, rate=0.02, steps=60, seed=3)
        b = simulate_online(HierarchicalRouter(), mesh, rate=0.02, steps=60, seed=3)
        assert a.injected == b.injected
        assert a.mean_latency == b.mean_latency
        np.testing.assert_array_equal(a.latencies, b.latencies)

    def test_rejects_non_oblivious(self, mesh):
        with pytest.raises(ValueError):
            simulate_online(
                GreedyMinCongestionRouter(), mesh, rate=0.01, steps=10
            )

    def test_invalid_policy(self, mesh):
        with pytest.raises(ValueError):
            simulate_online(
                HierarchicalRouter(), mesh, rate=0.01, steps=10, policy="nope"
            )

    def test_random_policy_runs(self, mesh):
        stats = simulate_online(
            HierarchicalRouter(), mesh, rate=0.02, steps=50, seed=4, policy="random"
        )
        assert stats.delivered == stats.injected

    def test_custom_destination_function(self, mesh):
        def neighbor_dest(m, src, rng):
            nbrs = m.neighbors(src)
            return int(nbrs[int(rng.integers(len(nbrs)))])

        stats = simulate_online(
            HierarchicalRouter(),
            mesh,
            rate=0.05,
            steps=60,
            seed=5,
            dest_fn=neighbor_dest,
        )
        assert stats.mean_distance == 1.0
        # constant stretch => tiny latencies on neighbor traffic
        assert stats.mean_latency < 12

    def test_summary(self, mesh):
        stats = simulate_online(HierarchicalRouter(), mesh, rate=0.02, steps=40, seed=6)
        assert "delivered" in stats.summary()


class TestLatencyVsLoad:
    def test_latency_increases_with_load(self, mesh):
        rows = latency_vs_load(
            HierarchicalRouter(), mesh, [0.01, 0.12], steps=120, seed=0
        )
        assert rows[0]["mean_latency"] <= rows[1]["mean_latency"] * 1.2
        assert rows[0]["max_queue"] <= rows[1]["max_queue"]

    def test_stretch_matters_at_light_load_on_local_traffic(self, mesh):
        """The online restatement of the paper: Valiant pays its stretch as
        latency on local traffic even when the network is idle."""

        def neighbor_dest(m, src, rng):
            nbrs = m.neighbors(src)
            return int(nbrs[int(rng.integers(len(nbrs)))])

        ours = simulate_online(
            HierarchicalRouter(), mesh, rate=0.01, steps=150, seed=7,
            dest_fn=neighbor_dest,
        )
        valiant = simulate_online(
            ValiantRouter(), mesh, rate=0.01, steps=150, seed=7,
            dest_fn=neighbor_dest,
        )
        assert ours.mean_latency * 1.5 < valiant.mean_latency

    def test_rows_have_router_name(self, mesh):
        rows = latency_vs_load(HierarchicalRouter(), mesh, [0.01], steps=40)
        assert rows[0]["router"] == "hierarchical"
