"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings
from hypothesis import strategies as st

# Derandomized by default: example choice is a pure function of the test
# body, so CI failures reproduce locally and shard-invariance hashes never
# flake.  Export HYPOTHESIS_PROFILE=thorough for a wider randomized sweep.
settings.register_profile("derandomized", derandomize=True)
settings.register_profile("thorough", max_examples=400)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "derandomized"))

from repro.mesh.mesh import Mesh
from repro.mesh.submesh import Submesh


@pytest.fixture
def mesh8() -> Mesh:
    """The paper's running example: the 8x8 mesh of Figure 1."""
    return Mesh((8, 8))


@pytest.fixture
def mesh16() -> Mesh:
    return Mesh((16, 16))


@pytest.fixture
def mesh3d() -> Mesh:
    return Mesh((8, 8, 8))


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


# ---------------------------------------------------------------------------
# Hypothesis strategies
# ---------------------------------------------------------------------------

def meshes(
    max_d: int = 3, max_side: int = 9, min_side: int = 1, torus: bool | None = False
) -> st.SearchStrategy[Mesh]:
    """Arbitrary (not necessarily power-of-two) meshes."""
    def build(sides, is_torus):
        return Mesh(sides, torus=is_torus)

    sides = st.lists(
        st.integers(min_side, max_side), min_size=1, max_size=max_d
    ).map(tuple)
    torus_st = st.booleans() if torus is None else st.just(bool(torus))
    return st.builds(build, sides, torus_st)


def pow2_cube_meshes(max_d: int = 3, max_k: int = 4) -> st.SearchStrategy[Mesh]:
    """Equal-sided power-of-two meshes (the paper's setting)."""
    return st.tuples(
        st.integers(1, max_d), st.integers(1, max_k)
    ).map(lambda dk: Mesh(((1 << dk[1]),) * dk[0]))


@st.composite
def mesh_and_node(draw, mesh_strategy=None):
    mesh = draw(meshes() if mesh_strategy is None else mesh_strategy)
    node = draw(st.integers(0, mesh.n - 1))
    return mesh, node


@st.composite
def mesh_and_pair(draw, mesh_strategy=None, distinct: bool = False):
    mesh = draw(meshes() if mesh_strategy is None else mesh_strategy)
    s = draw(st.integers(0, mesh.n - 1))
    t = draw(st.integers(0, mesh.n - 1))
    if distinct and mesh.n > 1:
        if s == t:
            t = (t + 1) % mesh.n
    return mesh, s, t


def _draw_box(draw, mesh: Mesh) -> Submesh:
    lo, hi = [], []
    for m_i in mesh.sides:
        a = draw(st.integers(0, m_i - 1))
        b = draw(st.integers(a, m_i - 1))
        lo.append(a)
        hi.append(b)
    return Submesh(mesh, lo, hi)


@st.composite
def submeshes(draw, mesh_strategy=None):
    mesh = draw(meshes() if mesh_strategy is None else mesh_strategy)
    return _draw_box(draw, mesh)


@st.composite
def submesh_pairs(draw, mesh_strategy=None):
    """Two submeshes of the *same* mesh."""
    mesh = draw(meshes() if mesh_strategy is None else mesh_strategy)
    return _draw_box(draw, mesh), _draw_box(draw, mesh)
