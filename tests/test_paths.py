"""Unit tests for path construction and validation."""

import numpy as np
import pytest

from repro.mesh.mesh import Mesh
from repro.mesh.paths import (
    concatenate_paths,
    dimension_order_path,
    is_valid_path,
    path_edge_endpoints,
    path_length,
    remove_cycles,
)


@pytest.fixture
def mesh():
    return Mesh((8, 8))


class TestDimensionOrderPath:
    def test_is_shortest(self, mesh):
        s, t = mesh.node(1, 2), mesh.node(5, 7)
        p = dimension_order_path(mesh, s, t)
        assert path_length(p) == mesh.distance(s, t)

    def test_endpoints(self, mesh):
        s, t = mesh.node(0, 0), mesh.node(7, 7)
        p = dimension_order_path(mesh, s, t)
        assert p[0] == s and p[-1] == t

    def test_valid_walk(self, mesh):
        p = dimension_order_path(mesh, mesh.node(3, 1), mesh.node(0, 6))
        assert is_valid_path(mesh, p)

    def test_trivial(self, mesh):
        p = dimension_order_path(mesh, 5, 5)
        assert p.tolist() == [5]

    def test_default_order_is_xy(self, mesh):
        # Default order corrects dim 0 (x, the row coordinate) first.
        p = dimension_order_path(mesh, mesh.node(0, 0), mesh.node(2, 3))
        coords = mesh.flat_to_coords(p)
        # first two steps move in dim 0
        assert coords[1].tolist() == [1, 0]
        assert coords[2].tolist() == [2, 0]

    def test_reversed_order_is_yx(self, mesh):
        p = dimension_order_path(mesh, mesh.node(0, 0), mesh.node(2, 3), order=(1, 0))
        coords = mesh.flat_to_coords(p)
        assert coords[1].tolist() == [0, 1]

    def test_one_bend_in_2d(self, mesh):
        # at most one bend: direction changes at most once
        p = dimension_order_path(mesh, mesh.node(1, 1), mesh.node(6, 5))
        coords = mesh.flat_to_coords(p)
        deltas = np.diff(coords, axis=0)
        dims_used = [int(np.argmax(np.abs(row))) for row in deltas]
        changes = sum(1 for a, b in zip(dims_used, dims_used[1:]) if a != b)
        assert changes <= 1

    def test_invalid_order_raises(self, mesh):
        with pytest.raises(ValueError):
            dimension_order_path(mesh, 0, 5, order=(0, 0))
        with pytest.raises(ValueError):
            dimension_order_path(mesh, 0, 5, order=(0,))

    def test_3d_order_respected(self):
        m = Mesh((4, 4, 4))
        s, t = m.node(0, 0, 0), m.node(1, 1, 1)
        p = dimension_order_path(m, s, t, order=(2, 0, 1))
        coords = m.flat_to_coords(p)
        assert coords[1].tolist() == [0, 0, 1]
        assert coords[2].tolist() == [1, 0, 1]
        assert coords[3].tolist() == [1, 1, 1]

    def test_torus_takes_short_way(self):
        t = Mesh((8, 8), torus=True)
        s, dst = t.node(0, 0), t.node(7, 0)
        p = dimension_order_path(t, s, dst)
        assert path_length(p) == 1

    def test_torus_tie_goes_positive(self):
        t = Mesh((8,), torus=True)
        p = dimension_order_path(t, 0, 4)
        assert p.tolist() == [0, 1, 2, 3, 4]

    def test_all_pairs_shortest(self):
        m = Mesh((4, 5))
        for s in range(m.n):
            for t in range(m.n):
                p = dimension_order_path(m, s, t)
                assert path_length(p) == m.distance(s, t)


class TestConcatenate:
    def test_basic(self, mesh):
        a = dimension_order_path(mesh, 0, 9)
        b = dimension_order_path(mesh, 9, 20)
        joined = concatenate_paths([a, b])
        assert joined[0] == 0 and joined[-1] == 20
        assert path_length(joined) == path_length(a) + path_length(b)

    def test_mismatched_junction_raises(self, mesh):
        a = dimension_order_path(mesh, 0, 9)
        b = dimension_order_path(mesh, 10, 20)
        with pytest.raises(ValueError):
            concatenate_paths([a, b])

    def test_single_piece(self, mesh):
        a = dimension_order_path(mesh, 0, 9)
        np.testing.assert_array_equal(concatenate_paths([a]), a)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            concatenate_paths([])

    def test_trivial_pieces(self, mesh):
        a = np.asarray([5])
        b = dimension_order_path(mesh, 5, 12)
        joined = concatenate_paths([a, b])
        np.testing.assert_array_equal(joined, b)


class TestValidation:
    def test_valid(self, mesh):
        assert is_valid_path(mesh, np.asarray([0, 1, 2, 10]))

    def test_endpoint_constraints(self, mesh):
        p = np.asarray([0, 1, 2])
        assert is_valid_path(mesh, p, src=0, dst=2)
        assert not is_valid_path(mesh, p, src=1)
        assert not is_valid_path(mesh, p, dst=1)

    def test_teleport_invalid(self, mesh):
        assert not is_valid_path(mesh, np.asarray([0, 2]))

    def test_out_of_range_invalid(self, mesh):
        assert not is_valid_path(mesh, np.asarray([0, -1]))
        assert not is_valid_path(mesh, np.asarray([63, 64]))

    def test_single_node_valid(self, mesh):
        assert is_valid_path(mesh, np.asarray([7]), src=7, dst=7)

    def test_empty_invalid(self, mesh):
        assert not is_valid_path(mesh, np.asarray([], dtype=np.int64))

    def test_edge_endpoints(self):
        tails, heads = path_edge_endpoints(np.asarray([3, 4, 5]))
        assert tails.tolist() == [3, 4]
        assert heads.tolist() == [4, 5]


class TestRemoveCycles:
    def test_no_cycle_unchanged(self, mesh):
        p = dimension_order_path(mesh, 0, 20)
        np.testing.assert_array_equal(remove_cycles(p), p)

    def test_simple_loop_removed(self, mesh):
        # 0 -> 1 -> 9 -> 8 -> 0 -> 1 ... revisits 0
        p = np.asarray([0, 1, 9, 8, 0, 8, 16])
        out = remove_cycles(p)
        assert out.tolist() == [0, 8, 16]

    def test_idempotent(self, mesh):
        p = np.asarray([0, 1, 9, 1, 2, 3])
        once = remove_cycles(p)
        np.testing.assert_array_equal(remove_cycles(once), once)

    def test_result_has_no_repeats(self):
        p = np.asarray([0, 1, 2, 1, 0, 1, 2, 3])
        out = remove_cycles(p)
        assert len(set(out.tolist())) == len(out)

    def test_preserves_endpoints(self):
        p = np.asarray([5, 6, 7, 6, 5, 6, 7, 8])
        out = remove_cycles(p)
        assert out[0] == 5 and out[-1] == 8

    def test_full_collapse(self):
        p = np.asarray([4, 5, 4])
        assert remove_cycles(p).tolist() == [4]
