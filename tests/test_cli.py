"""Tests for the command-line interface and ASCII visualisation."""

import argparse

import numpy as np
import pytest

from repro.analysis.visualize import draw_path, edge_load_heatmap, node_load_heatmap
from repro.cli import build_workload, main, parse_mesh
from repro.mesh.mesh import Mesh
from repro.mesh.paths import dimension_order_path


class TestParseMesh:
    def test_x_syntax(self):
        assert parse_mesh("16x16").sides == (16, 16)
        assert parse_mesh("8x8x8").sides == (8, 8, 8)
        assert parse_mesh("4").sides == (4,)

    def test_power_syntax(self):
        assert parse_mesh("16^2").sides == (16, 16)
        assert parse_mesh("8^3").sides == (8, 8, 8)

    def test_torus_flag(self):
        assert parse_mesh("8x8", torus=True).torus

    def test_bad_spec(self):
        with pytest.raises(argparse.ArgumentTypeError):
            parse_mesh("8xx8")
        with pytest.raises(argparse.ArgumentTypeError):
            parse_mesh("abc")


class TestBuildWorkload:
    @pytest.mark.parametrize(
        "name",
        ["transpose", "bit-reversal", "bit-complement", "tornado",
         "random-permutation", "random-pairs", "all-to-one",
         "nearest-neighbor", "block-exchange"],
    )
    def test_all_workloads(self, name):
        mesh = Mesh((8, 8))
        prob = build_workload(name, mesh, seed=0)
        assert prob.num_packets > 0

    def test_unknown(self):
        with pytest.raises(argparse.ArgumentTypeError):
            build_workload("nope", Mesh((4, 4)), 0)


class TestCommands:
    def test_route(self, capsys):
        assert main(["route", "--mesh", "8x8", "--workload", "transpose"]) == 0
        out = capsys.readouterr().out
        assert "C* lower bound" in out

    def test_route_heatmap_and_path(self, capsys):
        rc = main(
            ["route", "--mesh", "8x8", "--heatmap", "--show-path", "0"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "scale:" in out
        assert "S" in out and "T" in out

    def test_route_heatmap_3d_skipped(self, capsys):
        assert main(["route", "--mesh", "4x4x4", "--workload", "random-permutation",
                     "--heatmap"]) == 0
        err = capsys.readouterr().err
        assert "skipped" in err

    def test_compare(self, capsys):
        rc = main(
            ["compare", "--mesh", "8x8", "--workload", "nearest-neighbor",
             "--routers", "hierarchical,valiant", "--seeds", "0,1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "hierarchical" in out and "valiant" in out

    def test_decompose(self, capsys):
        assert main(["decompose", "--mesh", "8x8", "--render-level", "1"]) == 0
        out = capsys.readouterr().out
        assert "scheme=paper2d" in out
        assert "aaaabbbb" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "--mesh", "8x8", "--policy", "fifo"]) == 0
        assert "makespan=" in capsys.readouterr().out

    def test_online(self, capsys):
        assert main(["online", "--mesh", "8x8", "--rates", "0.02",
                     "--steps", "40"]) == 0
        assert "mean_latency" in capsys.readouterr().out

    @pytest.mark.parametrize("mode", ["static", "blocks", "dynamic"])
    def test_faults(self, mode, capsys):
        assert main(["faults", "--mesh", "8x8", "--mode", mode,
                     "--steps", "20", "--rate", "0.03"]) == 0
        out = capsys.readouterr().out
        assert "delivery_ratio" in out and "fault-free" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestVisualize:
    def test_node_heatmap_shape(self):
        mesh = Mesh((4, 4))
        art = node_load_heatmap(mesh, np.arange(16), legend=False)
        lines = art.splitlines()
        assert len(lines) == 4 and all(len(l) == 4 for l in lines)
        assert art[0] == " "  # zero cell is blank

    def test_node_heatmap_peak_is_at(self):
        mesh = Mesh((2, 2))
        art = node_load_heatmap(mesh, np.asarray([0, 0, 0, 9]), legend=False)
        assert art.splitlines()[1][1] == "@"

    def test_edge_heatmap_dimensions(self):
        mesh = Mesh((3, 3))
        art = edge_load_heatmap(mesh, np.zeros(mesh.num_edges), legend=False)
        lines = art.splitlines()
        assert len(lines) == 5 and all(len(l) == 5 for l in lines)
        assert lines[0][0] == "o"

    def test_edge_heatmap_marks_loaded_edge(self):
        mesh = Mesh((3, 3))
        loads = np.zeros(mesh.num_edges)
        eid = int(mesh.edge_ids(np.asarray([0]), np.asarray([1]))[0])
        loads[eid] = 5.0
        art = edge_load_heatmap(mesh, loads, legend=False)
        # edge (0,0)-(0,1) sits at canvas row 0, col 1
        assert art.splitlines()[0][1] == "@"

    def test_draw_path_marks(self):
        mesh = Mesh((4, 4))
        p = dimension_order_path(mesh, 0, 15)
        art = draw_path(mesh, p)
        assert art.count("S") == 1
        assert art.count("T") == 1
        assert art.count("*") == len(p) - 2

    def test_requires_2d(self):
        m3 = Mesh((2, 2, 2))
        with pytest.raises(ValueError):
            node_load_heatmap(m3, np.zeros(8))
        with pytest.raises(ValueError):
            edge_load_heatmap(m3, np.zeros(m3.num_edges))
        with pytest.raises(ValueError):
            draw_path(m3, np.asarray([0, 1]))

    def test_value_shape_validated(self):
        mesh = Mesh((4, 4))
        with pytest.raises(ValueError):
            node_load_heatmap(mesh, np.zeros(5))
        with pytest.raises(ValueError):
            edge_load_heatmap(mesh, np.zeros(3))


class TestCertifyAndBits:
    def test_certify_exhaustive(self, capsys):
        assert main(["certify", "--mesh", "4x4"]) == 0
        out = capsys.readouterr().out
        assert "exhaustive" in out
        assert "HOLDS" in out

    def test_certify_sampled(self, capsys):
        assert main(["certify", "--mesh", "16x16", "--samples", "100"]) == 0
        out = capsys.readouterr().out
        assert "sampled" in out
        assert "witness pair" in out

    def test_certify_3d_no_2d_bound_line(self, capsys):
        assert main(["certify", "--mesh", "4x4x4", "--samples", "50"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 3.4" not in out

    def test_bits(self, capsys):
        assert main(["bits", "--mesh", "8x8", "--packets", "30"]) == 0
        out = capsys.readouterr().out
        assert "fresh" in out and "recycled" in out
        assert "Lemma 5.4" in out
