"""Competitor routers (semi-oblivious + Räcke tree) and ``GeneralGraph``.

Covers the PR-9 acceptance matrix:

* ``GeneralGraph`` honours the ``Mesh`` topology contract (distances,
  edge ids, CSR adjacency) and cross-checks against ``Mesh`` on grids;
* both competitor routers are byte-deterministic under fixed seeds, for
  every batch mode and worker count, and per-packet oblivious;
* the randomness budget meters them (semi-oblivious pays ``k·⌈log n⌉``
  fresh bits, the tree router zero), and a tight enforced cap pushes
  semi-oblivious packets down the recycled (tree) rung of the ladder;
* the compact per-node tree state round-trips through bytes and stays
  logarithmic.

Property layers use seeded random *connected weighted* graphs built from
a random tree plus extra chords — arbitrary topologies, not grids.
"""

from __future__ import annotations

import hashlib
import json
import pickle
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.budget import BudgetParams, default_budget_bits
from repro.core.pathset import PathSet
from repro.core.randomness import bits_for_range
from repro.mesh.graph import (
    GeneralGraph,
    NAMED_GRAPHS,
    dumbbell,
    from_mesh,
    named_graph,
    random_regular,
)
from repro.mesh.mesh import Mesh
from repro.parallel import SerialExecutor, route_sharded
from repro.routing.competitors import (
    RackeNodeTable,
    RackeTreeRouter,
    SemiObliviousRouter,
    node_table,
    state_bits_per_node,
    tree_waypoints,
)
from repro.routing.registry import available_routers, make_router
from repro.verify.oracles import (
    oracle_weighted_distance,
    oracle_weighted_length,
)
from repro.workloads.generators import random_pairs
from repro.workloads.permutations import random_permutation


def digest(paths) -> str:
    h = hashlib.sha256()
    h.update(paths.nodes.tobytes())
    h.update(paths.offsets.tobytes())
    return h.hexdigest()


def random_connected_graph(seed: int, n: int) -> GeneralGraph:
    """A connected weighted graph: random tree + chords, quarter weights."""
    rng = np.random.default_rng(seed)
    edges = {(int(rng.integers(0, v)), v) for v in range(1, n)}
    for _ in range(int(rng.integers(0, 2 * n))):
        a, b = int(rng.integers(0, n)), int(rng.integers(0, n))
        if a != b:
            edges.add((min(a, b), max(a, b)))
    edge_list = sorted(edges)
    weights = 0.25 * rng.integers(1, 12, size=len(edge_list))
    return GeneralGraph(edge_list, weights, n=n, name=f"hyp-{seed}")


# ---------------------------------------------------------------------------
# GeneralGraph topology contract
# ---------------------------------------------------------------------------

class TestGeneralGraph:
    def test_registry_exposes_both_competitors(self):
        names = available_routers()
        assert "semi-oblivious" in names and "racke-tree" in names

    def test_construction_validation(self):
        with pytest.raises(ValueError, match="self-loops"):
            GeneralGraph([(0, 0), (0, 1)])
        with pytest.raises(ValueError, match="duplicate"):
            GeneralGraph([(0, 1), (1, 0)])
        with pytest.raises(ValueError, match="positive"):
            GeneralGraph([(0, 1)], weights=[0.0])
        with pytest.raises(ValueError, match="connected"):
            GeneralGraph([(0, 1), (2, 3)])
        with pytest.raises(ValueError, match="out of range"):
            GeneralGraph([(0, 5)], n=3)

    def test_edge_ids_rejects_non_links(self):
        g = named_graph("dumbbell-16")
        with pytest.raises(ValueError, match="not mesh neighbors"):
            g.edge_ids(np.array([0]), np.array([15]))  # cross-clique non-edge
        with pytest.raises(ValueError, match="not mesh neighbors"):
            g.edge_ids(np.array([3]), np.array([3]))

    def test_edge_id_table_roundtrip(self):
        g = named_graph("random-regular-24")
        for e in range(g.num_edges):
            u, v = g.edge_id_to_endpoints(e)
            assert int(g.edge_ids(np.array([u]), np.array([v]))[0]) == e
            assert int(g.edge_ids(np.array([v]), np.array([u]))[0]) == e

    @given(
        m1=st.integers(2, 5),
        m2=st.integers(2, 5),
        seed=st.integers(0, 10),
    )
    @settings(max_examples=15, deadline=None)
    def test_grid_equivalence_with_mesh(self, m1, m2, seed):
        """A mesh re-expressed as a GeneralGraph agrees on hop distances,
        neighbor sets, and degree — edge *ids* may be renumbered."""
        mesh = Mesh((m1, m2))
        g = from_mesh(mesh)
        rng = np.random.default_rng(seed)
        us = rng.integers(0, mesh.n, size=16)
        vs = rng.integers(0, mesh.n, size=16)
        np.testing.assert_array_equal(
            np.asarray(g.distance(us, vs)), np.asarray(mesh.distance(us, vs))
        )
        for v in range(mesh.n):
            assert g.neighbors(v) == mesh.neighbors(v)
            assert g.degree(v) == mesh.degree(v)
        assert g.diameter == mesh.diameter
        assert g.num_edges == mesh.num_edges

    def test_adjacency_csr_mask_contract(self):
        g = named_graph("dumbbell-16")
        mask = np.ones(g.num_edges, dtype=bool)
        bridge = int(g.edge_ids(np.array([7]), np.array([8]))[0])
        mask[bridge] = False
        indptr, heads, eids = g.adjacency_csr(mask)
        assert indptr[-1] == 2 * (g.num_edges - 1)
        assert bridge not in set(eids.tolist())
        with pytest.raises(ValueError, match="edge_mask"):
            g.adjacency_csr(np.ones(3, dtype=bool))

    def test_identity_and_pickle(self):
        a = named_graph("random-regular-24")
        b = random_regular(24, 4, seed=7, weighted=True)
        assert a == b and hash(a) == hash(b)
        assert a != dumbbell(8)
        assert a != Mesh((24,))  # never equal to a same-shaped mesh
        c = pickle.loads(pickle.dumps(a))
        assert c == a and hash(c) == hash(a)
        # named_graph memoises: same object back on every call
        assert named_graph("random-regular-24") is a
        with pytest.raises(KeyError):
            named_graph("no-such-graph")

    def test_paper_gates_stay_closed(self):
        g = named_graph("dumbbell-16")
        assert g.is_power_of_two_cube is False
        assert g.torus is False and g.d == 1 and g.sides == (g.n,)

    def test_pathset_edge_cache_distinguishes_same_shape_topologies(self):
        """Regression for the edge-id cache key: a 1-D mesh and a graph
        with the same node count must not share cached edge ids."""
        mesh = Mesh((5,))
        g = GeneralGraph([(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)], n=5)
        assert mesh.sides == g.sides and mesh.torus == g.torus
        ps = PathSet.from_paths([np.array([0, 1, 2], dtype=np.int64)])
        mesh_ids = ps.edge_ids(mesh).tolist()
        graph_ids = ps.edge_ids(g).tolist()
        assert mesh_ids == [0, 1]
        assert graph_ids == [0, 2]  # (0,1) then (1,2) in lexicographic order

    def test_weighted_distance_uses_lengths(self):
        g = dumbbell(8)  # bridge edge (7, 8) has weight 0.5
        assert g.distance(7, 8) == 1
        assert g.weighted_distance(7, 8) == 0.5
        assert g.weighted_distance(0, 15) == 1.0 + 0.5 + 1.0

    def test_named_graphs_all_buildable(self):
        for name in NAMED_GRAPHS:
            g = named_graph(name)
            assert g.n >= 2 and g.num_edges >= g.n - 1


# ---------------------------------------------------------------------------
# Determinism, batch modes, worker counts
# ---------------------------------------------------------------------------

TOPOLOGIES = (
    lambda: Mesh((8, 8)),
    lambda: Mesh((8, 8), torus=True),
    lambda: named_graph("random-regular-24"),
    lambda: named_graph("dumbbell-16"),
)


class TestDeterminism:
    @pytest.mark.parametrize("name", ["semi-oblivious", "racke-tree"])
    @pytest.mark.parametrize("topo", TOPOLOGIES, ids=["8x8", "8x8t", "rr24", "dumbbell"])
    def test_scalar_vs_batch_byte_equality(self, name, topo):
        """route(batch=True), route(batch=False) and a manual per-packet
        select_path loop must all produce identical bytes."""
        from repro.core.randomness import packet_streams

        mesh = topo()
        problem = random_pairs(mesh, 40, seed=3)
        router = make_router(name)
        a = router.route(problem, seed=11, batch=True)
        b = router.route(problem, seed=11, batch=False)
        assert digest(a.paths) == digest(b.paths)
        streams = packet_streams(a.seed, 0, problem.num_packets)
        manual = [
            router.select_path(mesh, int(s), int(t), stream)
            for (s, t), stream in zip(problem.pairs(), streams)
        ]
        assert digest(PathSet.from_paths(manual)) == digest(a.paths)

    @pytest.mark.parametrize("name", ["semi-oblivious", "racke-tree"])
    def test_seed_determinism(self, name):
        g = named_graph("random-regular-24")
        problem = random_permutation(g, seed=0)
        router = make_router(name)
        assert digest(router.route(problem, seed=5).paths) == digest(
            router.route(problem, seed=5).paths
        )

    def test_semi_oblivious_seed_sensitivity(self):
        g = named_graph("random-regular-24")
        problem = random_permutation(g, seed=0)
        router = make_router("semi-oblivious")
        hashes = {digest(router.route(problem, seed=s).paths) for s in range(6)}
        assert len(hashes) > 1  # the candidate sampling really is random

    def test_racke_tree_ignores_the_seed(self):
        g = named_graph("dumbbell-16")
        problem = random_permutation(g, seed=0)
        router = make_router("racke-tree")
        assert digest(router.route(problem, seed=0).paths) == digest(
            router.route(problem, seed=999).paths
        )

    @pytest.mark.parametrize("workers", [2, 3, 5])
    @pytest.mark.parametrize("name", ["semi-oblivious", "racke-tree"])
    def test_shard_invariance(self, name, workers):
        g = named_graph("random-regular-24")
        problem = random_pairs(g, 60, seed=1)
        router = make_router(name)
        serial = router.route(problem, seed=7, workers=1)
        sharded = route_sharded(
            router, problem, seed=7, workers=workers, executor=SerialExecutor()
        )
        assert digest(serial.paths) == digest(sharded.paths)

    def test_process_pool_matches_serial_on_a_graph(self):
        g = named_graph("dumbbell-16")
        problem = random_pairs(g, 40, seed=2)
        router = make_router("semi-oblivious")
        a = router.route(problem, seed=4, workers=1)
        b = router.route(problem, seed=4, workers=4)
        assert digest(a.paths) == digest(b.paths)

    def test_golden_graph_cell_for_every_worker_count(self):
        """The committed general-graph golden binds sharded execution."""
        goldens = json.loads(
            (Path(__file__).parent / "golden" / "path_hashes.json").read_text()
        )
        g = named_graph("random-regular-24")
        problem = random_permutation(g, seed=0)
        for name in ("semi-oblivious", "racke-tree"):
            for workers in (1, 3):
                res = make_router(name).route(problem, seed=0, workers=workers)
                assert (
                    digest(res.paths)
                    == goldens[f"{name}|random-regular-24|seed=0"]
                )


# ---------------------------------------------------------------------------
# Hypothesis property layer: arbitrary connected weighted graphs
# ---------------------------------------------------------------------------

class TestGraphProperties:
    @given(seed=st.integers(0, 40), n=st.integers(4, 14))
    @settings(max_examples=20, deadline=None)
    def test_valid_walks_on_arbitrary_graphs(self, seed, n):
        g = random_connected_graph(seed, n)
        problem = random_pairs(g, 12, seed=seed + 1)
        for name in ("semi-oblivious", "racke-tree"):
            res = make_router(name).route(problem, seed=seed)
            assert res.validate()
            for i in range(problem.num_packets):
                path = [int(x) for x in res.paths[i]]
                assert path[0] == int(problem.sources[i])
                assert path[-1] == int(problem.dests[i])
                assert len(set(path)) == len(path)  # cycle-free

    @given(seed=st.integers(0, 30), n=st.integers(4, 12))
    @settings(max_examples=15, deadline=None)
    def test_semi_oblivious_weighted_stretch(self, seed, n):
        """Every sampled candidate is shortest under <= (1+eps)-inflated
        weights, so the chosen path's weighted length obeys the bound."""
        g = random_connected_graph(seed, n)
        problem = random_pairs(g, 10, seed=seed + 2)
        router = SemiObliviousRouter()
        res = router.route(problem, seed=seed)
        for i in range(problem.num_packets):
            s, t = int(problem.sources[i]), int(problem.dests[i])
            got = oracle_weighted_length(g, res.paths[i])
            opt = oracle_weighted_distance(g, s, t)
            assert got <= (1.0 + router.eps) * opt + 1e-9

    @given(seed=st.integers(0, 30), n=st.integers(4, 12))
    @settings(max_examples=15, deadline=None)
    def test_racke_path_within_waypoint_ceiling(self, seed, n):
        g = random_connected_graph(seed, n)
        problem = random_pairs(g, 10, seed=seed + 3)
        res = RackeTreeRouter().route(problem, seed=seed)
        for i in range(problem.num_packets):
            s, t = int(problem.sources[i]), int(problem.dests[i])
            if s == t:
                continue
            way = tree_waypoints(g, s, t)
            ceiling = sum(
                oracle_weighted_distance(g, a, b) for a, b in zip(way, way[1:])
            )
            assert oracle_weighted_length(g, res.paths[i]) <= ceiling + 1e-9

    @given(
        seed=st.integers(0, 20),
        n=st.integers(4, 12),
        row=st.integers(0, 9),
    )
    @settings(max_examples=15, deadline=None)
    def test_per_packet_obliviousness(self, seed, n, row):
        """Routing packet i alone at its global index reproduces its path."""
        g = random_connected_graph(seed, n)
        problem = random_pairs(g, 10, seed=seed + 4)
        for name in ("semi-oblivious", "racke-tree"):
            router = make_router(name)
            full = router.route(problem, seed=seed)
            solo = router.route(
                problem.subproblem([row]), full.seed, packet_offset=row
            )
            np.testing.assert_array_equal(
                np.asarray(solo.paths[0]), np.asarray(full.paths[row])
            )

    @given(seed=st.integers(0, 25), workers=st.sampled_from([2, 3, 5, 9]))
    @settings(max_examples=15, deadline=None)
    def test_budget_ledger_shard_invariant(self, seed, workers):
        """TestBudgetSharding idiom, lifted to a general graph: merged
        shard ledgers equal the serial ledger field for field."""
        g = named_graph("random-regular-24")
        problem = random_pairs(g, 30, seed=seed)
        budget = BudgetParams(mode="measure")
        router = SemiObliviousRouter()
        serial = router.route(problem, seed=seed, workers=1, budget=budget)
        sharded = route_sharded(
            router, problem, seed=seed, workers=workers,
            executor=SerialExecutor(), budget=budget,
        )
        assert digest(serial.paths) == digest(sharded.paths)
        assert serial.budget.to_dict() == sharded.budget.to_dict()


# ---------------------------------------------------------------------------
# Randomness budget: metering and the degradation ladder
# ---------------------------------------------------------------------------

class TestBudget:
    def test_semi_oblivious_is_metered(self):
        g = named_graph("random-regular-24")
        problem = random_pairs(g, 25, seed=0)
        res = SemiObliviousRouter().route(problem, seed=1, budget="measure")
        per_packet = 4 * bits_for_range(g.n)
        assert res.budget.metered == 25 and res.budget.unmetered == 0
        assert res.budget.bits_drawn == 25 * per_packet
        assert res.budget.max_bits == per_packet

    def test_racke_tree_draws_zero_bits(self):
        g = named_graph("dumbbell-16")
        problem = random_pairs(g, 25, seed=0)
        res = RackeTreeRouter().route(problem, seed=1, budget="measure")
        assert res.budget.metered == 25
        assert res.budget.bits_drawn == 0 and res.budget.max_bits == 0

    @pytest.mark.parametrize("topo", TOPOLOGIES, ids=["8x8", "8x8t", "rr24", "dumbbell"])
    def test_default_ceiling_never_degrades_competitors(self, topo):
        mesh = topo()
        problem = random_pairs(mesh, 30, seed=3)
        ceiling = default_budget_bits(mesh)
        for name in ("semi-oblivious", "racke-tree"):
            router = make_router(name)
            plan = router.planned_bits(problem)
            assert int(np.max(plan)) <= ceiling
            res = router.route(problem, seed=2, budget="enforce")
            assert res.budget.fallbacks == 0

    def test_tight_cap_falls_back_to_the_tree_rung(self):
        """Under an impossible fresh budget every semi-oblivious packet is
        re-routed by the zero-bit tree fallback — never dimension-order,
        which does not exist on a general graph."""
        g = named_graph("random-regular-24")
        problem = random_permutation(g, seed=0)
        capped = SemiObliviousRouter().route(problem, seed=6, budget=3)
        tree = RackeTreeRouter().route(problem, seed=6)
        assert digest(capped.paths) == digest(tree.paths)
        assert capped.budget.fallbacks_recycled == problem.num_packets
        assert capped.budget.fallbacks_dimorder == 0
        assert capped.budget.bits_drawn == 0

    def test_tight_cap_ladder_is_shard_invariant(self):
        g = named_graph("random-regular-24")
        problem = random_pairs(g, 40, seed=5)
        budget = BudgetParams(mode="enforce", bits=3)
        serial = SemiObliviousRouter().route(
            problem, seed=6, workers=1, budget=budget
        )
        sharded = route_sharded(
            SemiObliviousRouter(), problem, seed=6, workers=3,
            executor=SerialExecutor(), budget=budget,
        )
        assert digest(serial.paths) == digest(sharded.paths)
        assert serial.budget.to_dict() == sharded.budget.to_dict()


# ---------------------------------------------------------------------------
# Compact per-node tree state
# ---------------------------------------------------------------------------

class TestRackeNodeTable:
    def test_roundtrip_every_node(self):
        g = named_graph("dumbbell-16")
        for v in range(g.n):
            table = node_table(g, v)
            assert table.centers[-1] == v
            assert RackeNodeTable.from_bytes(table.to_bytes()) == table

    def test_rejects_bad_blobs(self):
        g = named_graph("dumbbell-16")
        blob = node_table(g, 0).to_bytes()
        with pytest.raises(ValueError, match="magic"):
            RackeNodeTable.from_bytes(b"XXXX" + blob[4:])
        with pytest.raises(ValueError, match="trailing"):
            RackeNodeTable.from_bytes(blob + b"\x00")
        with pytest.raises(ValueError, match="end at the node"):
            RackeNodeTable(n=4, node=1, centers=(0, 2))
        with pytest.raises(ValueError, match="out of range"):
            node_table(g, g.n)

    @pytest.mark.parametrize("topo", TOPOLOGIES, ids=["8x8", "8x8t", "rr24", "dumbbell"])
    def test_state_stays_logarithmic(self, topo):
        mesh = topo()
        bits = state_bits_per_node(mesh)
        depth_ceiling = int(np.ceil(np.log2(mesh.n))) + 1
        # header (14 bytes) + <= depth_ceiling centers of 4 bytes each
        assert bits <= 8 * (14 + 4 * depth_ceiling)

    def test_chains_share_the_root(self):
        g = named_graph("random-regular-24")
        roots = {node_table(g, v).centers[0] for v in range(g.n)}
        assert len(roots) == 1
