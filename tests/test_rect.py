"""Tests for the rectangular-mesh extension."""

import numpy as np
import pytest

from repro.core.path_selection import HierarchicalRouter
from repro.core.rect import RectDecomposition, RectHierarchicalRouter
from repro.mesh.mesh import Mesh
from repro.mesh.paths import is_valid_path, path_length
from repro.workloads.generators import random_pairs


class TestRectDecomposition:
    def test_rejects_non_pow2(self):
        with pytest.raises(ValueError):
            RectDecomposition(Mesh((6, 8)))

    def test_rejects_torus(self):
        with pytest.raises(ValueError):
            RectDecomposition(Mesh((8, 8), torus=True))

    def test_levels_follow_largest_side(self):
        dec = RectDecomposition(Mesh((32, 4)))
        assert dec.k == 5
        assert dec.sides_at_level(0) == (32, 4)
        assert dec.sides_at_level(3) == (4, 1)
        assert dec.sides_at_level(5) == (1, 1)

    def test_exhausted_dimension_not_shifted(self):
        dec = RectDecomposition(Mesh((32, 4)))
        # at level 3 dim 1 is a single node: its shift must be zero
        for j in range(1, dec.num_types(3) + 1):
            assert dec.shift_vector(3, j)[1] == 0

    def test_type1_partition(self):
        dec = RectDecomposition(Mesh((16, 4)))
        for level in range(dec.k + 1):
            covered = np.zeros(dec.mesh.n, dtype=int)
            g = [m // s for m, s in zip(dec.mesh.sides, dec.sides_at_level(level))]
            from itertools import product

            for cell in product(*(range(x) for x in g)):
                covered[dec.type1_box(level, cell).nodes()] += 1
            assert np.all(covered == 1)

    def test_type1_ancestors_nested(self):
        dec = RectDecomposition(Mesh((16, 4, 8)))
        node = dec.mesh.node(13, 2, 5)
        prev = dec.type1_ancestor(node, 0)
        for h in range(1, dec.k + 1):
            cur = dec.type1_ancestor(node, h)
            assert cur.contains_submesh(prev)
            prev = cur

    def test_containing_regulars_contain(self):
        dec = RectDecomposition(Mesh((32, 8)))
        from repro.mesh.submesh import Submesh

        box = Submesh(dec.mesh, (14, 3), (17, 4))
        for level in range(dec.k + 1):
            for cand in dec.containing_regulars(box, level):
                assert cand.contains_submesh(box)

    def test_bridge_contains_both(self):
        dec = RectDecomposition(Mesh((32, 8)))
        mesh = dec.mesh
        rng = np.random.default_rng(0)
        for _ in range(40):
            s, t = (int(x) for x in rng.integers(mesh.n, size=2))
            if s == t:
                continue
            m1 = dec.type1_ancestor(s, 1)
            m3 = dec.type1_ancestor(t, 1)
            h, bridge = dec.find_bridge(m1, m3, 2)
            assert bridge.contains_submesh(m1)
            assert bridge.contains_submesh(m3)

    def test_matches_cube_decomposition_on_cubes(self):
        from repro.core.decomposition import Decomposition

        mesh = Mesh((8, 8))
        rect = RectDecomposition(mesh)
        cube = Decomposition(mesh, scheme="multishift")
        assert rect.k == cube.k
        for level in range(rect.k + 1):
            assert rect.sides_at_level(level) == (cube.side(level),) * 2
        node = mesh.node(5, 2)
        for h in range(rect.k + 1):
            assert rect.type1_ancestor(node, h) == cube.type1_ancestor(node, h)


class TestRectRouter:
    @pytest.mark.parametrize("sides", [(32, 8), (16, 4, 4), (64, 2), (4, 16)])
    def test_paths_valid(self, sides):
        mesh = Mesh(sides)
        router = RectHierarchicalRouter()
        prob = random_pairs(mesh, 150, seed=1)
        res = router.route(prob, seed=2)
        assert res.validate()

    @pytest.mark.parametrize("sides", [(32, 8), (16, 4, 4), (4, 16)])
    def test_stretch_empirically_bounded(self, sides):
        """No proof on rectangles; empirically the cube envelope holds for
        moderate aspect ratios (documented extension caveat)."""
        from repro.analysis.theory import stretch_bound_general

        mesh = Mesh(sides)
        router = RectHierarchicalRouter()
        prob = random_pairs(mesh, 200, seed=3)
        res = router.route(prob, seed=4)
        assert res.stretch <= stretch_bound_general(mesh.d)

    def test_trivial_packet(self):
        router = RectHierarchicalRouter()
        p = router.select_path(Mesh((32, 8)), 5, 5, np.random.default_rng(0))
        assert p.tolist() == [5]

    def test_sequence_nested(self):
        mesh = Mesh((32, 8))
        router = RectHierarchicalRouter()
        rng = np.random.default_rng(5)
        for _ in range(30):
            s, t = (int(x) for x in rng.integers(mesh.n, size=2))
            if s == t:
                continue
            seq, peak = router.submesh_sequence(mesh, s, t)
            for i in range(peak):
                assert seq[i + 1].contains_submesh(seq[i])
            for i in range(peak, len(seq) - 1):
                assert seq[i].contains_submesh(seq[i + 1])

    def test_agrees_with_cube_router_quality_on_cubes(self):
        """On an actual cube the rectangular router's quality matches the
        proved router's (same construction, independent code path)."""
        mesh = Mesh((16, 16))
        prob = random_pairs(mesh, 200, seed=6)
        rect = RectHierarchicalRouter().route(prob, seed=7)
        cube = HierarchicalRouter(variant="general", scheme="multishift").route(
            prob, seed=7
        )
        assert rect.validate() and cube.validate()
        assert rect.stretch <= 2 * cube.stretch + 4
        assert rect.congestion <= 2 * cube.congestion + 4

    def test_long_thin_mesh_degenerates_gracefully(self):
        """Extreme aspect ratios lose the bridge guarantee but stay valid
        and within a small multiple of the cube envelope."""
        mesh = Mesh((64, 2))
        router = RectHierarchicalRouter()
        prob = random_pairs(mesh, 200, seed=8)
        res = router.route(prob, seed=9)
        assert res.validate()
        assert res.stretch <= 128  # 2x the cube bound; documented caveat

    def test_drop_cycles_flag(self):
        mesh = Mesh((16, 4))
        router = RectHierarchicalRouter(drop_cycles=False)
        rng = np.random.default_rng(10)
        p = router.select_path(mesh, 0, mesh.n - 1, rng)
        assert is_valid_path(mesh, p, 0, mesh.n - 1)
