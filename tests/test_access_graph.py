"""Tests for the explicit access graph (Section 3.2)."""

import numpy as np
import pytest

from repro.core.access_graph import AccessGraph
from repro.core.decomposition import Decomposition
from repro.mesh.mesh import Mesh
from repro.mesh.submesh import Submesh


@pytest.fixture(scope="module")
def graph8():
    return AccessGraph(Decomposition(Mesh((8, 8))))


@pytest.fixture(scope="module")
def graph16():
    return AccessGraph(Decomposition(Mesh((16, 16))))


class TestStructure:
    def test_root_is_whole_mesh(self, graph8):
        assert graph8.root.box == Submesh.whole(graph8.dec.mesh)
        assert graph8.root.level == 0

    def test_leaves_are_nodes(self, graph8):
        leaves = graph8.levels[graph8.dec.k]
        assert len(leaves) == graph8.dec.mesh.n
        assert all(r.box.is_single_node for r in leaves)

    def test_leaf_lookup(self, graph8):
        node = graph8.dec.mesh.node(3, 6)
        leaf = graph8.leaf(node)
        assert leaf.box.contains_node(node)
        assert leaf.box.is_single_node

    def test_levels_count(self, graph8):
        assert len(graph8.levels) == graph8.dec.k + 1

    def test_region_dedup(self, graph8):
        """Distinct regular submeshes: one graph node per (level, region)."""
        for level, regs in enumerate(graph8.levels):
            boxes = [r.box for r in regs]
            assert len(boxes) == len(set(boxes))

    def test_edges_are_containments(self, graph8):
        for level in range(1, graph8.dec.k + 1):
            for child in graph8.levels[level]:
                for parent in graph8.parents(child):
                    assert parent.level == level - 1
                    assert parent.box.contains_submesh(child.box)

    def test_children_inverse_of_parents(self, graph8):
        for level in range(1, graph8.dec.k + 1):
            for child in graph8.levels[level]:
                for parent in graph8.parents(child):
                    assert child in graph8.children(parent)

    def test_root_has_no_parents(self, graph8):
        assert graph8.parents(graph8.root) == []

    def test_leaves_have_no_children(self, graph8):
        leaf = graph8.leaf(0)
        assert graph8.children(leaf) == []

    def test_not_a_tree(self, graph8):
        """The access graph is NOT a tree: some node has two parents
        (Lemma 3.1 part (3) gives type-1 *or* type-2 containment, or both)."""
        multi = [
            r
            for level in range(1, graph8.dec.k + 1)
            for r in graph8.levels[level]
            if len(graph8.parents(r)) >= 2
        ]
        assert multi, "bridges must create multi-parent nodes"

    def test_counts(self, graph8):
        assert graph8.num_nodes() == sum(len(l) for l in graph8.levels)
        assert graph8.num_edges() > 0


class TestLemmas:
    def test_lemma_3_1(self, graph8):
        results = graph8.check_lemma_3_1()
        assert results["disjoint"] and results["partition"] and results["contained"]

    def test_lemma_3_1_16x16(self, graph16):
        results = graph16.check_lemma_3_1()
        assert results["disjoint"] and results["partition"] and results["contained"]

    def test_lemma_3_1_part3_erratum(self, graph8):
        """The literal part (3) fails for deep shifted submeshes: a
        documented erratum (see AccessGraph.check_lemma_3_1)."""
        results = graph8.check_lemma_3_1()
        assert results["contained_all_types"] is False
        # concrete witness from the reproduction notes
        from repro.mesh.submesh import Submesh

        witness = graph8.node_for_box(Submesh(graph8.dec.mesh, (1, 3), (2, 4)), 2)
        assert witness is not None
        assert graph8.parents(witness) == []

    def test_lemma_3_2_samples(self, graph8):
        rng = np.random.default_rng(0)
        samples = []
        for level in range(graph8.dec.k + 1):
            for reg in graph8.levels[level]:
                v = int(reg.box.sample_node(rng))
                samples.append((v, reg))
        assert graph8.check_lemma_3_2(samples)

    def test_lemma_3_2_rejects_outside_node(self, graph8):
        reg = graph8.levels[1][0]
        outside = [
            v for v in range(graph8.dec.mesh.n) if not reg.box.contains_node(v)
        ][0]
        with pytest.raises(ValueError):
            graph8.check_lemma_3_2([(outside, reg)])


class TestPaths:
    def test_monotonic_chain(self, graph8):
        node = graph8.dec.mesh.node(5, 5)
        chain = graph8.monotonic_chain(node, graph8.dec.k)
        assert chain[0] == graph8.root
        assert chain[-1] == graph8.leaf(node)
        assert graph8.is_monotonic_path(chain)

    def test_bitonic_path_structure(self, graph8):
        mesh = graph8.dec.mesh
        rng = np.random.default_rng(1)
        for _ in range(40):
            s, t = (int(x) for x in rng.integers(mesh.n, size=2))
            if s == t:
                continue
            path = graph8.bitonic_path(s, t)
            assert path[0] == graph8.leaf(s)
            assert path[-1] == graph8.leaf(t)
            levels = [r.level for r in path]
            top = min(levels)
            peak = levels.index(top)
            # strictly rising to the bridge, strictly falling after
            assert levels[: peak + 1] == list(range(levels[0], top - 1, -1))
            assert levels[peak:] == list(range(top, levels[-1] + 1))

    def test_bitonic_path_consecutive_containment(self, graph8):
        mesh = graph8.dec.mesh
        rng = np.random.default_rng(2)
        for _ in range(40):
            s, t = (int(x) for x in rng.integers(mesh.n, size=2))
            if s == t:
                continue
            path = graph8.bitonic_path(s, t)
            for a, b in zip(path, path[1:]):
                smaller, larger = (a, b) if a.level > b.level else (b, a)
                assert larger.box.contains_submesh(smaller.box)

    def test_bitonic_path_single_bridge_not_type1_only_at_top(self, graph8):
        """Only the top of the bitonic path may be a shifted submesh."""
        mesh = graph8.dec.mesh
        for s, t in [(0, 63), (7, 56), (0, 1)]:
            path = graph8.bitonic_path(s, t)
            levels = [r.level for r in path]
            peak = levels.index(min(levels))
            for i, reg in enumerate(path):
                if i != peak:
                    assert reg.is_type1

    def test_trivial_bitonic_path(self, graph8):
        assert graph8.bitonic_path(5, 5) == [graph8.leaf(5)]

    def test_dca_matches_bitonic_peak(self, graph8):
        s, t = 3, 60
        h, bridge = graph8.deepest_common_ancestor(s, t)
        path = graph8.bitonic_path(s, t)
        top = min(path, key=lambda r: r.level)
        assert top.level == graph8.dec.level_of_height(h)
        assert top.box == bridge.box

    def test_is_monotonic_rejects_shifted_interior(self, graph8):
        # A chain whose non-top node is type-2 is not monotonic.
        type2 = next(r for r in graph8.levels[1] if r.type_index == 2)
        chain = [graph8.root, type2]
        assert not graph8.is_monotonic_path(chain)

    def test_empty_not_monotonic(self, graph8):
        assert not graph8.is_monotonic_path([])


class TestNetworkx:
    def test_dag_export(self, graph8):
        import networkx as nx

        g = graph8.to_networkx()
        assert g.number_of_nodes() == graph8.num_nodes()
        assert g.number_of_edges() == graph8.num_edges()
        assert nx.is_directed_acyclic_graph(g)

    def test_all_leaves_reachable_from_root(self, graph8):
        import networkx as nx

        g = graph8.to_networkx()
        reachable = nx.descendants(g, graph8.root)
        for leaf in graph8.levels[graph8.dec.k]:
            assert leaf in reachable
