"""Unit tests for the submesh (axis-aligned box) algebra."""

import numpy as np
import pytest

from repro.mesh.mesh import Mesh
from repro.mesh.submesh import Submesh


@pytest.fixture
def mesh():
    return Mesh((8, 8))


class TestConstruction:
    def test_paper_notation_example(self, mesh):
        # "[0,3][2,5] refers to a 4x4 submesh" (Section 2)
        s = Submesh(mesh, (0, 2), (3, 5))
        assert s.sides == (4, 4)
        assert s.size == 16

    def test_rejects_inverted(self, mesh):
        with pytest.raises(ValueError):
            Submesh(mesh, (3, 0), (2, 5))

    def test_rejects_out_of_bounds(self, mesh):
        with pytest.raises(ValueError):
            Submesh(mesh, (0, 0), (8, 5))
        with pytest.raises(ValueError):
            Submesh(mesh, (-1, 0), (3, 5))

    def test_rejects_wrong_arity(self, mesh):
        with pytest.raises(ValueError):
            Submesh(mesh, (0,), (3,))

    def test_whole(self, mesh):
        w = Submesh.whole(mesh)
        assert w.size == mesh.n
        assert w.sides == mesh.sides

    def test_single(self, mesh):
        s = Submesh.single(mesh, mesh.node(3, 4))
        assert s.is_single_node
        assert s.size == 1
        assert s.contains_node(mesh.node(3, 4))

    def test_immutable(self, mesh):
        s = Submesh.whole(mesh)
        with pytest.raises(AttributeError):
            s.lo = (1, 1)

    def test_equality_and_hash(self, mesh):
        a = Submesh(mesh, (0, 0), (3, 3))
        b = Submesh(mesh, (0, 0), (3, 3))
        c = Submesh(mesh, (0, 0), (3, 4))
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_repr(self, mesh):
        assert repr(Submesh(mesh, (0, 2), (3, 5))) == "Submesh[0,3][2,5]"


class TestMembership:
    def test_contains_node(self, mesh):
        s = Submesh(mesh, (2, 2), (5, 5))
        assert s.contains_node(mesh.node(2, 2))
        assert s.contains_node(mesh.node(5, 5))
        assert not s.contains_node(mesh.node(1, 3))
        assert not s.contains_node(mesh.node(6, 3))

    def test_contains_node_vectorized(self, mesh):
        s = Submesh(mesh, (0, 0), (3, 3))
        nodes = np.asarray([mesh.node(0, 0), mesh.node(4, 4), mesh.node(3, 3)])
        np.testing.assert_array_equal(s.contains_node(nodes), [True, False, True])

    def test_contains_submesh(self, mesh):
        outer = Submesh(mesh, (0, 0), (5, 5))
        inner = Submesh(mesh, (1, 2), (3, 4))
        assert outer.contains_submesh(inner)
        assert not inner.contains_submesh(outer)
        assert outer.contains_submesh(outer)

    def test_intersect(self, mesh):
        a = Submesh(mesh, (0, 0), (3, 3))
        b = Submesh(mesh, (2, 2), (5, 5))
        i = a.intersect(b)
        assert i == Submesh(mesh, (2, 2), (3, 3))
        assert a.intersect(b) == b.intersect(a)

    def test_disjoint_intersection(self, mesh):
        a = Submesh(mesh, (0, 0), (1, 1))
        b = Submesh(mesh, (4, 4), (6, 6))
        assert a.intersect(b) is None
        assert not a.overlaps(b)


class TestNodes:
    def test_nodes_count(self, mesh):
        s = Submesh(mesh, (1, 2), (3, 5))
        assert s.nodes().size == s.size

    def test_nodes_all_inside(self, mesh):
        s = Submesh(mesh, (1, 2), (3, 5))
        assert np.all(s.contains_node(s.nodes()))

    def test_iter_coords_matches_nodes(self, mesh):
        s = Submesh(mesh, (0, 6), (1, 7))
        from_iter = sorted(
            mesh.node(*c) for c in s.iter_coords()
        )
        assert from_iter == sorted(s.nodes().tolist())

    def test_sample_node_inside(self, mesh):
        rng = np.random.default_rng(0)
        s = Submesh(mesh, (2, 3), (4, 6))
        for _ in range(50):
            assert s.contains_node(s.sample_node(rng))

    def test_sample_node_covers_box(self, mesh):
        rng = np.random.default_rng(0)
        s = Submesh(mesh, (0, 0), (1, 1))
        seen = {s.sample_node(rng) for _ in range(200)}
        assert seen == set(s.nodes().tolist())

    def test_clamp_coords(self, mesh):
        s = Submesh(mesh, (2, 2), (5, 5))
        assert s.clamp_coords((0, 7)) == (2, 5)
        assert s.clamp_coords((3, 3)) == (3, 3)


class TestOut:
    def test_interior_square(self, mesh):
        s = Submesh(mesh, (2, 2), (5, 5))
        assert s.out() == 16  # 4 faces x 4 edges

    def test_corner_square(self, mesh):
        s = Submesh(mesh, (0, 0), (3, 3))
        assert s.out() == 8  # only 2 interior faces

    def test_whole_mesh_no_boundary(self, mesh):
        assert Submesh.whole(mesh).out() == 0

    def test_single_node(self, mesh):
        assert Submesh.single(mesh, mesh.node(3, 3)).out() == 4
        assert Submesh.single(mesh, mesh.node(0, 0)).out() == 2

    def test_full_span_dimension(self, mesh):
        # A row spanning the full x extent: boundary only along y.
        s = Submesh(mesh, (0, 3), (7, 4))
        assert s.out() == 16

    def test_out_matches_enumeration(self, mesh):
        boxes = [
            Submesh(mesh, (2, 2), (5, 5)),
            Submesh(mesh, (0, 0), (3, 3)),
            Submesh(mesh, (0, 3), (7, 4)),
            Submesh.single(mesh, mesh.node(4, 0)),
            Submesh(mesh, (1, 0), (6, 7)),
        ]
        for b in boxes:
            assert b.out() == b.boundary_edge_ids().size

    def test_out_torus(self):
        t = Mesh((8, 8), torus=True)
        s = Submesh(t, (0, 0), (3, 3))
        # On the torus every face of every dimension counts.
        assert s.out() == 16
        assert s.out() == s.boundary_edge_ids().size

    def test_out_3d(self):
        m = Mesh((4, 4, 4))
        s = Submesh(m, (1, 1, 1), (2, 2, 2))
        assert s.out() == 6 * 4
        assert s.out() == s.boundary_edge_ids().size

    def test_lemma_a4_examples(self):
        # out(M') >= (n')^{(d-1)/d} when every dim keeps an interior face
        m = Mesh((16, 16))
        for lo, hi in [((2, 2), (5, 5)), ((1, 1), (8, 12)), ((3, 7), (3, 7))]:
            s = Submesh(m, lo, hi)
            assert s.out() >= s.size ** ((m.d - 1) / m.d) - 1e-9


class TestDecompositionHelpers:
    def test_halve_counts(self, mesh):
        children = Submesh.whole(mesh).halve()
        assert len(children) == 4
        assert all(c.sides == (4, 4) for c in children)

    def test_halve_partitions(self, mesh):
        whole = Submesh.whole(mesh)
        children = whole.halve()
        all_nodes = np.sort(np.concatenate([c.nodes() for c in children]))
        np.testing.assert_array_equal(all_nodes, np.sort(whole.nodes()))

    def test_halve_odd_raises(self, mesh):
        with pytest.raises(ValueError):
            Submesh(mesh, (0, 0), (2, 2)).halve()

    def test_halve_3d(self):
        m = Mesh((4, 4, 4))
        children = Submesh.whole(m).halve()
        assert len(children) == 8
        assert sum(c.size for c in children) == m.n

    def test_bounding_with(self, mesh):
        a = Submesh(mesh, (0, 0), (1, 1))
        b = Submesh(mesh, (4, 2), (5, 3))
        bb = a.bounding_with(b)
        assert bb == Submesh(mesh, (0, 0), (5, 3))
        assert bb.contains_submesh(a) and bb.contains_submesh(b)

    def test_bounding_box_of_pair(self, mesh):
        r = Submesh.bounding_box(mesh, mesh.node(5, 1), mesh.node(2, 6))
        assert r == Submesh(mesh, (2, 1), (5, 6))
