"""Run the executable examples embedded in module docstrings and docs files."""

import doctest
import pathlib

import pytest

import repro
import repro.cache
import repro.faults.model
import repro.kernels
import repro.mesh.mesh
import repro.mesh.submesh
import repro.obs.profiler

DOCS = pathlib.Path(__file__).resolve().parent.parent / "docs"


@pytest.mark.parametrize(
    "module",
    [repro, repro.mesh.mesh, repro.mesh.submesh, repro.cache,
     repro.faults.model, repro.obs.profiler, repro.kernels],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"no doctests found in {module.__name__}"


@pytest.mark.parametrize(
    "name", ["API.md", "PERFORMANCE.md", "KERNELS.md", "FAULTS.md",
             "VERIFICATION.md", "RANDOMNESS.md", "SERVICE.md",
             "COMPETITORS.md", "WORKLOADS.md"]
)
def test_docs_doctests(name):
    path = DOCS / name
    results = doctest.testfile(str(path), module_relative=False, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {name}"
    assert results.attempted > 0, f"no doctests found in {name}"
