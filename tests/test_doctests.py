"""Run the executable examples embedded in module docstrings."""

import doctest

import pytest

import repro
import repro.mesh.mesh
import repro.mesh.submesh


@pytest.mark.parametrize(
    "module",
    [repro, repro.mesh.mesh, repro.mesh.submesh],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"no doctests found in {module.__name__}"
