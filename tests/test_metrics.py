"""Tests for congestion / dilation / stretch metrics."""

import numpy as np
import pytest

from repro.mesh.mesh import Mesh
from repro.mesh.paths import dimension_order_path
from repro.metrics.congestion import (
    congestion,
    directed_edge_loads,
    edge_loads,
    node_loads,
)
from repro.metrics.stretch import dilation, stretch, stretches


@pytest.fixture
def mesh():
    return Mesh((4, 4))


class TestEdgeLoads:
    def test_single_path(self, mesh):
        p = np.asarray([0, 1, 2])
        loads = edge_loads(mesh, [p])
        assert loads.sum() == 2
        assert loads.max() == 1

    def test_overlapping_paths(self, mesh):
        a = np.asarray([0, 1, 2])
        b = np.asarray([1, 2, 3])
        loads = edge_loads(mesh, [a, b])
        shared = mesh.edge_ids(np.asarray([1]), np.asarray([2]))[0]
        assert loads[shared] == 2
        assert congestion(mesh, [a, b]) == 2

    def test_direction_agnostic(self, mesh):
        a = np.asarray([0, 1])
        b = np.asarray([1, 0])
        assert congestion(mesh, [a, b]) == 2

    def test_double_crossing_counts_twice(self, mesh):
        p = np.asarray([0, 1, 0, 1])
        eid = mesh.edge_ids(np.asarray([0]), np.asarray([1]))[0]
        assert edge_loads(mesh, [p])[eid] == 3

    def test_empty_and_trivial(self, mesh):
        assert congestion(mesh, []) == 0
        assert congestion(mesh, [np.asarray([3])]) == 0
        assert edge_loads(mesh, [np.asarray([3])]).sum() == 0

    def test_total_equals_sum_of_lengths(self, mesh):
        paths = [
            dimension_order_path(mesh, 0, 15),
            dimension_order_path(mesh, 3, 12),
            dimension_order_path(mesh, 5, 5),
        ]
        assert edge_loads(mesh, paths).sum() == sum(len(p) - 1 for p in paths)


def _directed_loads_brute(mesh, paths):
    """Orientation counted edge by edge with the scalar endpoint decoder."""
    out = np.zeros((mesh.num_edges, 2), dtype=np.int64)
    for p in paths:
        p = np.asarray(p, dtype=np.int64)
        for a, b in zip(p[:-1].tolist(), p[1:].tolist()):
            eid = int(mesh.edge_ids(np.asarray([a]), np.asarray([b]))[0])
            low, _ = mesh.edge_id_to_endpoints(eid)
            out[eid, 0 if a == low else 1] += 1
    return out


class TestDirectedLoads:
    def test_split_by_direction(self, mesh):
        fwd = np.asarray([0, 1])
        bwd = np.asarray([1, 0])
        loads = directed_edge_loads(mesh, [fwd, fwd, bwd])
        eid = int(mesh.edge_ids(np.asarray([0]), np.asarray([1]))[0])
        assert loads[eid].tolist() == [2, 1]

    def test_sums_match_undirected(self, mesh):
        paths = [dimension_order_path(mesh, 0, 15), dimension_order_path(mesh, 15, 0)]
        undirected = edge_loads(mesh, paths)
        directed = directed_edge_loads(mesh, paths)
        np.testing.assert_array_equal(directed.sum(axis=1), undirected)

    @pytest.mark.parametrize("torus", [False, True])
    def test_matches_brute_force_orientation_count(self, torus):
        m = Mesh((4, 4), torus=torus)
        rng = np.random.default_rng(0)
        paths = []
        for _ in range(30):
            s, t = rng.integers(m.n, size=2)
            paths.append(dimension_order_path(m, int(s), int(t), tuple(rng.permutation(2))))
        np.testing.assert_array_equal(
            directed_edge_loads(m, paths), _directed_loads_brute(m, paths)
        )

    def test_endpoint_table_matches_scalar_decoder(self):
        for m in (Mesh((4, 4)), Mesh((3, 5)), Mesh((4, 4), torus=True), Mesh((2, 3, 4))):
            table = m.edge_endpoints
            assert table.shape == (m.num_edges, 2)
            for e in range(m.num_edges):
                assert tuple(table[e]) == m.edge_id_to_endpoints(e)


class TestNodeLoads:
    def test_counts_visits(self, mesh):
        p = dimension_order_path(mesh, 0, 5)
        loads = node_loads(mesh, [p, p])
        for v in p:
            assert loads[v] == 2
        assert loads.sum() == 2 * len(p)

    def test_revisiting_path_counts_once(self, mesh):
        # A walk that revisits nodes 0 and 1: each visited node still
        # contributes exactly one to its load for this path.
        p = np.asarray([0, 1, 0, 1, 2])
        loads = node_loads(mesh, [p])
        assert loads[0] == 1 and loads[1] == 1 and loads[2] == 1
        assert loads.sum() == 3

    def test_mixed_with_trivial_and_empty(self, mesh):
        paths = [np.asarray([3]), np.asarray([], dtype=np.int64), np.asarray([3, 7])]
        loads = node_loads(mesh, paths)
        assert loads[3] == 2 and loads[7] == 1
        assert loads.sum() == 3


class TestStretch:
    def test_values(self, mesh):
        sources = np.asarray([0, 0])
        dests = np.asarray([3, 5])
        paths = [np.asarray([0, 1, 2, 3]), np.asarray([0, 1, 2, 6, 5])]
        vals = stretches(mesh, sources, dests, paths)
        assert vals[0] == 1.0
        assert vals[1] == 2.0
        assert stretch(mesh, sources, dests, paths) == 2.0

    def test_nan_for_self_packets(self, mesh):
        vals = stretches(mesh, np.asarray([4]), np.asarray([4]), [np.asarray([4])])
        assert np.isnan(vals[0])
        assert stretch(mesh, np.asarray([4]), np.asarray([4]), [np.asarray([4])]) == 0.0

    def test_length_mismatch(self, mesh):
        with pytest.raises(ValueError):
            stretches(mesh, np.asarray([0]), np.asarray([1]), [])

    def test_dilation(self):
        assert dilation([np.asarray([0, 1, 2]), np.asarray([5])]) == 2
        assert dilation([]) == 0
