"""The SLO telemetry layer: exact percentiles, exact merges, honest rows.

The streaming :class:`~repro.obs.histogram.Histogram` is pinned against
``numpy.percentile(..., method="inverted_cdf")`` — *equality* for integer
samples at ``bin_width=1`` (the latency/backlog case), a one-bin error
bound otherwise — and its merge is exact by construction, so shard
telemetry can fold without approximation.  :class:`SLOStats` and
:func:`capacity_curve` sit on top; their accounting (attainment against
the injected population) is checked here and cross-checked against the
simulator by ``repro verify``'s ``online.conservation`` invariant.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh.mesh import Mesh
from repro.obs.histogram import Histogram
from repro.routing.registry import make_router
from repro.simulation import SLOParams, SLOStats, capacity_curve
from repro.workloads.traffic import PoissonTraffic

QS = (0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0)


class TestHistogramVsNumpy:
    @given(st.lists(st.integers(0, 500), min_size=1, max_size=300))
    def test_integer_samples_match_inverted_cdf_exactly(self, values):
        h = Histogram()
        h.add_many(values)
        arr = np.asarray(values)
        for q in QS:
            want = float(np.percentile(arr, q, method="inverted_cdf"))
            assert h.percentile(q) == want, (q, values)

    @given(
        st.lists(
            st.floats(0, 100, allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=200,
        ),
        st.sampled_from((0.5, 1.0, 2.5)),
    )
    def test_fractional_samples_within_one_bin(self, values, bin_width):
        h = Histogram(bin_width=bin_width)
        h.add_many(values)
        arr = np.asarray(values)
        for q in QS:
            want = float(np.percentile(arr, q, method="inverted_cdf"))
            # the bin floor can undershoot by at most one bin width
            assert want - bin_width < h.percentile(q) <= want + bin_width

    def test_empty_histogram_is_nan(self):
        h = Histogram()
        assert math.isnan(h.percentile(50))
        assert math.isnan(h.mean)
        assert h.count == 0

    def test_one_sample_is_every_percentile(self):
        h = Histogram()
        h.add(7)
        for q in QS:
            assert h.percentile(q) == 7.0

    @given(
        st.lists(st.integers(0, 99), min_size=1, max_size=120),
        st.integers(1, 6),
    )
    def test_merge_is_shard_invariant(self, values, shards):
        whole = Histogram()
        whole.add_many(values)
        parts = [Histogram() for _ in range(shards)]
        for i, v in enumerate(values):
            parts[i % shards].add(v)
        merged = Histogram()
        for p in parts:
            merged.merge(p)
        assert merged.to_dict() == whole.to_dict()
        for q in QS:
            assert merged.percentile(q) == whole.percentile(q)

    def test_merge_dict_roundtrip_and_width_mismatch(self):
        h = Histogram(bin_width=2.0)
        h.add_many([1, 3, 9])
        again = Histogram.from_dict(h.to_dict())
        assert again.percentile(50) == h.percentile(50)
        with pytest.raises(ValueError):
            Histogram(bin_width=1.0).merge(h)


class TestSLOStats:
    def test_attainment_counts_against_injected(self):
        s = SLOStats(params=SLOParams(deadline=10))
        s.injected = 4
        s.record_delivery(5)   # met
        s.record_delivery(10)  # met (boundary)
        s.record_delivery(11)  # missed
        # the fourth packet was dropped: it never records a delivery
        assert s.delivered == 3 and s.met_deadline == 2
        assert s.attainment == pytest.approx(2 / 4)

    def test_no_deadline_scores_delivery(self):
        s = SLOStats()
        s.injected = 2
        s.record_delivery(1_000)
        assert s.met_deadline == 1
        assert s.attainment == pytest.approx(1 / 2)

    def test_percentile_row_keys(self):
        s = SLOStats()
        s.record_delivery(4)
        row = s.to_row()
        assert {"p50", "p99", "p999"} <= set(row)
        assert row["p50"] == row["p99"] == row["p999"] == 4.0

    def test_merge_folds_counts_and_bins(self):
        a, b = SLOStats(), SLOStats()
        a.injected, b.injected = 2, 3
        a.record_delivery(1)
        b.record_delivery(9)
        b.record_backlog(5)
        a.merge(b)
        assert a.injected == 5 and a.delivered == 2
        assert a.latency_hist.count == 2
        assert a.backlog_hist.count == 1


class TestProfilerHistograms:
    def test_online_run_emits_latency_and_hop_histograms(self):
        from repro.obs import Profiler
        from repro.simulation import simulate_online

        mesh = Mesh((8, 8))

        def run(workers):
            profiler = Profiler()
            stats = simulate_online(
                make_router("hierarchical"),
                mesh,
                traffic=PoissonTraffic(rate=0.2),
                steps=12,
                seed=4,
                profiler=profiler,
                workers=workers,
            )
            return stats, profiler

        stats, prof = run(1)
        assert prof.histograms["online.latency"].count == stats.delivered
        assert prof.histograms["online.path_hops"].count == stats.injected
        # worker snapshots fold exactly: same bins from any shard count
        _, prof2 = run(2)
        assert (
            prof2.histograms["online.path_hops"].to_dict()
            == prof.histograms["online.path_hops"].to_dict()
        )


class TestCapacityCurve:
    def test_one_row_per_rate_with_the_full_ladder(self):
        rows = capacity_curve(
            make_router("dim-order"),
            Mesh((4, 4)),
            rates=(0.05, 0.3),
            steps=20,
            slo=SLOParams(deadline=16),
        )
        assert [r["offered_rate"] for r in rows] == [0.05, 0.3]
        for row in rows:
            assert {"router", "injected", "delivered", "makespan", "p50",
                    "p99", "p999", "attainment", "backlog_p99"} <= set(row)
            assert row["router"] == "dim-order"
            assert row["delivered"] <= row["injected"]
            assert 0.0 <= row["attainment"] <= 1.0

    def test_default_traffic_is_poisson(self):
        mesh = Mesh((4, 4))
        rows = capacity_curve(
            make_router("dim-order"), mesh, rates=(0.2,), steps=15
        )
        explicit = capacity_curve(
            make_router("dim-order"),
            mesh,
            rates=(0.2,),
            steps=15,
            traffic_factory=PoissonTraffic,
        )
        assert rows[0]["injected"] == explicit[0]["injected"]
        assert rows[0]["p99"] == explicit[0]["p99"]
