"""Property-based suite for the traffic processes and their telemetry.

Four contracts, each the operational form of a claim in
``docs/WORKLOADS.md``:

* **byte-determinism** — a trace is a pure function of ``(seed, step)``:
  same seed, same bytes, regardless of how the stream is consumed
  (``chunk_steps`` cannot leak into the hash);
* **rate conservation** — realised arrivals concentrate around
  ``mean_load`` (generators may shape *where* load goes, never how much);
* **validity** — every emitted id is a node of the target graph and no
  packet is sent to itself, on meshes, tori, rectangles and general
  graphs alike;
* **shard invariance** — ``simulate_online`` statistics, including the
  exact-merge SLO histograms, are identical for every worker count.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh.graph import named_graph
from repro.mesh.mesh import Mesh
from repro.routing.registry import make_router
from repro.simulation import SLOParams, simulate_online
from repro.workloads.traffic import TRAFFIC, make_traffic, stream_hash

#: the validity matrix: square, torus, rectangle, general graph
GRAPHS = (
    Mesh((4, 4)),
    Mesh((4, 4), torus=True),
    Mesh((8, 2)),
    named_graph("dumbbell-16"),
)

traffic_names = st.sampled_from(sorted(TRAFFIC))
seeds = st.one_of(st.integers(0, 2**32 - 1), st.integers(0, 2**128 - 1))


class TestByteDeterminism:
    @given(traffic_names, seeds)
    def test_same_seed_same_bytes(self, name, seed):
        t = make_traffic(name)
        g = GRAPHS[0]
        assert stream_hash(t, g, 24, seed=seed) == stream_hash(t, g, 24, seed=seed)

    @given(traffic_names, seeds, st.integers(1, 40))
    def test_chunking_cannot_leak_into_the_hash(self, name, seed, chunk):
        t = make_traffic(name)
        g = GRAPHS[1]
        assert stream_hash(t, g, 30, seed=seed, chunk_steps=chunk) == stream_hash(
            t, g, 30, seed=seed, chunk_steps=30
        )

    @given(traffic_names, st.integers(0, 2**32 - 1))
    def test_distinct_seeds_decorrelate(self, name, seed):
        t = make_traffic(name)
        g = GRAPHS[0]
        # not a tautology: equal hashes would mean the seed is ignored
        assert stream_hash(t, g, 40, seed=seed) != stream_hash(
            t, g, 40, seed=seed + 1
        )

    @given(traffic_names, seeds, st.integers(0, 50))
    def test_restart_mid_stream_replays_the_suffix(self, name, seed, start):
        """``start=k`` resumes exactly where a fresh consumer left off —
        the property that lets a sharded driver hand off mid-trace."""
        t = make_traffic(name)
        g = GRAPHS[2]
        whole = list(t.stream(g, start + 5, seed=seed))
        suffix = list(t.stream(g, 5, seed=seed, start=start))
        for (s0, a0, b0), (s1, a1, b1) in zip(whole[start:], suffix):
            assert s0 == s1
            np.testing.assert_array_equal(a0, a1)
            np.testing.assert_array_equal(b0, b1)


class TestRateConservation:
    @given(traffic_names, st.integers(0, 2**32 - 1))
    @settings(max_examples=30)
    def test_realised_load_tracks_mean_load(self, name, seed):
        t = make_traffic(name)
        g = GRAPHS[0]
        steps = 120
        expected = t.mean_load(g, steps)
        realised = sum(src.size for _, src, _ in t.stream(g, steps, seed=seed))
        # Poisson-ish concentration: 6 sigma + slack covers every family,
        # including the MMPP whose realised rate mixes over chain states
        assert abs(realised - expected) <= 6 * np.sqrt(expected + 1) + 0.35 * expected


class TestValidity:
    @given(
        traffic_names,
        st.integers(0, len(GRAPHS) - 1),
        st.integers(0, 2**32 - 1),
        st.integers(0, 60),
    )
    def test_arrivals_are_valid_nodes(self, name, gi, entropy, step):
        g = GRAPHS[gi]
        src, dst = make_traffic(name).arrivals_at(g, step, entropy)
        assert src.shape == dst.shape and src.dtype == np.int64
        if src.size:
            assert src.min() >= 0 and src.max() < g.n
            assert dst.min() >= 0 and dst.max() < g.n
            assert np.all(src != dst)


class TestShardInvariance:
    @given(
        st.sampled_from(("poisson", "hotspot", "mmpp")),
        st.integers(0, 2**16),
    )
    @settings(max_examples=4, deadline=None)
    def test_online_stats_and_histograms_for_all_worker_counts(self, name, seed):
        mesh = Mesh((4, 4))
        slo = SLOParams(deadline=12)

        def run(workers):
            return simulate_online(
                make_router("hierarchical"),
                mesh,
                traffic=make_traffic(name),
                steps=10,
                seed=seed,
                slo=slo,
                workers=workers,
            )

        base = run(1)
        for workers in (2, 3):
            other = run(workers)
            assert other.injected == base.injected
            assert other.delivered == base.delivered
            assert other.steps == base.steps
            np.testing.assert_array_equal(other.latencies, base.latencies)
            # exact histogram merge: identical bins, not just identical
            # percentiles
            assert other.slo.latency_hist.to_dict() == base.slo.latency_hist.to_dict()
            assert other.slo.backlog_hist.to_dict() == base.slo.backlog_hist.to_dict()
            assert other.slo.attainment == base.slo.attainment
