#!/usr/bin/env python
"""Regenerate the golden traffic-trace matrix (``traffic_hashes.json``).

Run after any *intentional* change to the arrival processes or the
``SIM_TRAFFIC`` seed derivation:

    PYTHONPATH=src python tests/golden/regenerate_traffic_goldens.py [--force]

Each entry is the sha256 over the packed ``(step, source, target)``
``int64`` rows (:func:`repro.workloads.traffic.stream_hash`) of one cell:
every registry traffic process plus the adversarial replay, on the 8x8
mesh and the 8x8 torus, at two seeds.  The horizon (96 steps) exceeds
the shifting-hotspot period so the shifting and static hotspot cells
cannot silently collapse into the same trace.

``tests/test_traffic.py`` recomputes every cell and compares: a mismatch
means a stored seed now replays a *different* load history — an API
break for every recorded experiment — and must be a deliberate,
documented decision.  Like ``regenerate_goldens.py``, this script prints
an added/removed/changed diff and refuses to overwrite changed hashes
without ``--force``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: (torus, label) on an 8x8 footprint — big enough for hot sets and the
#: adversarial construction, small enough to regenerate in seconds
MESHES = ((False, "8x8"), (True, "8x8t"))
SEEDS = (0, 1)
#: longer than ShiftingHotspotTraffic's default period (50) — see module
#: docstring
STEPS = 96
ADV_L = 4


def traffic_golden_cases():
    """Yield ``(key, hash_fn)`` for every cell of the traffic matrix.

    Shared with ``tests/test_traffic.py`` so the test and this script can
    never disagree about what the matrix contains.
    """
    from repro.mesh.mesh import Mesh
    from repro.workloads.traffic import TRAFFIC, adversarial_replay, make_traffic, stream_hash

    for torus, label in MESHES:
        mesh = Mesh((8, 8), torus=torus)
        for name in sorted(TRAFFIC):
            for seed in SEEDS:

                def cell(name=name, mesh=mesh, seed=seed):
                    return stream_hash(make_traffic(name), mesh, STEPS, seed=seed)

                yield f"{name}|{label}|seed={seed}", cell
        for seed in SEEDS:

            def cell_adv(mesh=mesh, seed=seed):
                traffic = adversarial_replay(mesh, "dim-order", l=ADV_L)
                return stream_hash(traffic, mesh, STEPS, seed=seed)

            yield f"adversarial-dim-order-l{ADV_L}|{label}|seed={seed}", cell_adv


def build_matrix() -> dict[str, str]:
    return {key: cell() for key, cell in traffic_golden_cases()}


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    force = "--force" in argv
    out = Path(__file__).parent / "traffic_hashes.json"
    old = json.loads(out.read_text()) if out.exists() else {}
    new = build_matrix()

    added = sorted(set(new) - set(old))
    removed = sorted(set(old) - set(new))
    changed = sorted(k for k in set(new) & set(old) if new[k] != old[k])
    for key in added:
        print(f"  added:   {key}")
    for key in removed:
        print(f"  removed: {key}")
    for key in changed:
        print(f"  CHANGED: {key}")
    print(
        f"{len(new)} cells: {len(added)} added, {len(removed)} removed, "
        f"{len(changed)} changed"
    )
    if changed and not force:
        print(
            "refusing to overwrite changed hashes — changed cells replay "
            "different load histories for every stored seed; rerun with "
            "--force if that is intentional",
            file=sys.stderr,
        )
        return 1
    out.write_text(json.dumps(new, indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(new)} golden traffic hashes to {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
