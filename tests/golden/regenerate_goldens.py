#!/usr/bin/env python
"""Regenerate the golden path-hash matrix (``path_hashes.json``).

Run after any *intentional* change to path selection or seed derivation:

    PYTHONPATH=src python tests/golden/regenerate_goldens.py [--force]

Each entry is the sha256 over the merged CSR bytes (nodes then offsets)
of one cell of the matrix: every oblivious registry router on every mesh
family it supports (square, rectangular, torus), plus fault-aware
hierarchical cells, each at three seeds.  ``tests/test_golden.py``
recomputes every cell and compares: a mismatch means the bytes a given
seed produces have changed — which is an API break for anyone replaying
stored seeds — and must be a deliberate, documented decision, never an
accident.

To make that decision visible, this script never silently overwrites:
it prints an added/removed/changed diff against the committed file and
*aborts* when existing hashes changed, unless ``--force`` is given.
"""

from __future__ import annotations

import hashlib
import json
import sys
from pathlib import Path

#: (sides, torus, label) — label is the mesh part of every golden key
MESHES = (
    ((8, 8), False, "8x8"),
    ((16, 16), False, "16x16"),
    ((8, 8), True, "8x8t"),
    ((8, 4), False, "8x4"),
)
SEEDS = (0, 1, 2)

#: fault-aware cells: hierarchical behind a static fault mask, on the
#: meshes where the hierarchical decomposition is defined
FAULT_MESH_LABELS = ("8x8", "8x8t")
FAULT_P = 0.05
FAULT_SEED = 1

#: randomness-budget cells: bit-metered scalar runs (fresh / recycled)
#: on both 8x8 families, plus a tight enforced cap on the square that
#: pins the degradation ladder's bytes (recycled + dim-order fallbacks)
BUDGET_MESH_LABELS = ("8x8", "8x8t")
BUDGET_ENFORCE_BITS = 16

#: one fixed general graph (see repro.mesh.graph.NAMED_GRAPHS): both
#: topology-generic competitor routers, pinned at the same three seeds
GRAPH_LABEL = "random-regular-24"
GRAPH_ROUTERS = ("semi-oblivious", "racke-tree")


def _workload(mesh):
    """Transpose where it is defined; bit-complement on rectangles."""
    from repro.cli import build_workload
    from repro.workloads.permutations import transpose

    if len(set(mesh.sides)) == 1:
        return transpose(mesh)
    return build_workload("bit-complement", mesh, 0)


def golden_cases():
    """Yield ``(key, route_fn)`` for every cell of the golden matrix.

    Shared by this script and ``tests/test_golden.py`` so the two can
    never disagree about what the matrix contains.  ``route_fn()`` routes
    the cell serially and returns the :class:`RoutingResult`.
    """
    from repro.faults.model import FaultModel
    from repro.faults.router import FaultAwareRouter
    from repro.mesh.mesh import Mesh
    from repro.routing.registry import available_routers, make_router
    from repro.verify.cases import Case, supported

    for sides, torus, label in MESHES:
        mesh = Mesh(sides, torus=torus)
        problem = _workload(mesh)
        for name in available_routers():
            if not make_router(name).is_oblivious:
                continue  # greedy baselines re-order work; no per-seed contract
            probe = Case(
                sides=tuple(sides),
                torus=torus,
                router=name,
                workload="random-pairs",
                seed=0,
                packets=1,
            )
            if not supported(probe):
                continue
            for seed in SEEDS:

                def route(name=name, problem=problem, seed=seed):
                    return make_router(name).route(problem, seed=seed)

                yield f"{name}|{label}|seed={seed}", route
        if label in FAULT_MESH_LABELS:
            for seed in SEEDS:

                def route_faulty(mesh=mesh, problem=problem, seed=seed):
                    router = FaultAwareRouter(
                        make_router("hierarchical"),
                        FaultModel.static(mesh, p=FAULT_P, seed=FAULT_SEED),
                    )
                    return router.route(problem, seed=seed)

                yield f"hierarchical+static-faults|{label}|seed={seed}", route_faulty
        if label in BUDGET_MESH_LABELS:
            for mode in ("fresh", "recycled"):
                for seed in SEEDS:

                    def route_bits(problem=problem, seed=seed, mode=mode):
                        return make_router("hierarchical", bit_mode=mode).route(
                            problem, seed=seed
                        )

                    yield f"hierarchical+bits-{mode}|{label}|seed={seed}", route_bits
        if label == "8x8":
            for seed in SEEDS:

                def route_budget(problem=problem, seed=seed):
                    return make_router("hierarchical").route(
                        problem, seed=seed, budget=BUDGET_ENFORCE_BITS
                    )

                yield (
                    f"hierarchical+budget-enforce{BUDGET_ENFORCE_BITS}"
                    f"|{label}|seed={seed}",
                    route_budget,
                )

    # general-graph cells: a fixed random permutation on the named graph
    from repro.mesh.graph import named_graph
    from repro.workloads.permutations import random_permutation

    gproblem = random_permutation(named_graph(GRAPH_LABEL), seed=0)
    for name in GRAPH_ROUTERS:
        for seed in SEEDS:

            def route_graph(name=name, problem=gproblem, seed=seed):
                return make_router(name).route(problem, seed=seed)

            yield f"{name}|{GRAPH_LABEL}|seed={seed}", route_graph


def cell_hash(result) -> str:
    h = hashlib.sha256()
    h.update(result.paths.nodes.tobytes())
    h.update(result.paths.offsets.tobytes())
    return h.hexdigest()


def build_matrix() -> dict[str, str]:
    return {key: cell_hash(route()) for key, route in golden_cases()}


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    force = "--force" in argv
    out = Path(__file__).parent / "path_hashes.json"
    old = json.loads(out.read_text()) if out.exists() else {}
    new = build_matrix()

    added = sorted(set(new) - set(old))
    removed = sorted(set(old) - set(new))
    changed = sorted(k for k in set(new) & set(old) if new[k] != old[k])
    for key in added:
        print(f"  added:   {key}")
    for key in removed:
        print(f"  removed: {key}")
    for key in changed:
        print(f"  CHANGED: {key}")
    print(
        f"{len(new)} cells: {len(added)} added, {len(removed)} removed, "
        f"{len(changed)} changed"
    )
    if changed and not force:
        print(
            "refusing to overwrite changed hashes — changed cells break "
            "every stored seed; rerun with --force if that is intentional",
            file=sys.stderr,
        )
        return 1
    out.write_text(json.dumps(new, indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(new)} golden hashes to {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
