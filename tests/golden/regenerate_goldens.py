#!/usr/bin/env python
"""Regenerate the golden path-hash matrix (``path_hashes.json``).

Run after any *intentional* change to path selection or seed derivation:

    PYTHONPATH=src python tests/golden/regenerate_goldens.py

Each entry is the sha256 over the merged CSR bytes (nodes then offsets)
of one ``router x mesh x seed`` cell, routed serially on the transpose
workload.  ``tests/test_golden.py`` recomputes every cell and compares:
a mismatch means the bytes a given seed produces have changed — which is
an API break for anyone replaying stored seeds — and must be a deliberate,
documented decision, never an accident.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

MESHES = ((8, 8), (16, 16))
SEEDS = (0, 1, 2)


def build_matrix() -> dict[str, str]:
    from repro.mesh.mesh import Mesh
    from repro.routing.registry import available_routers, make_router
    from repro.workloads.permutations import transpose

    matrix: dict[str, str] = {}
    for name in available_routers():
        router = make_router(name)
        if not router.is_oblivious:
            continue  # greedy baselines re-order work; no per-seed contract
        for sides in MESHES:
            problem = transpose(Mesh(sides))
            for seed in SEEDS:
                result = make_router(name).route(problem, seed=seed)
                h = hashlib.sha256()
                h.update(result.paths.nodes.tobytes())
                h.update(result.paths.offsets.tobytes())
                key = f"{name}|{'x'.join(map(str, sides))}|seed={seed}"
                matrix[key] = h.hexdigest()
    return matrix


def main() -> None:
    out = Path(__file__).parent / "path_hashes.json"
    matrix = build_matrix()
    out.write_text(json.dumps(matrix, indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(matrix)} golden hashes to {out}")


if __name__ == "__main__":
    main()
