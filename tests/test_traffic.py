"""Unit + golden tests for the trace-driven arrival processes.

Covers the concrete behaviour of every generator in
:mod:`repro.workloads.traffic` (rates, hot sets, epochs, replay), the
committed golden trace matrix (``tests/golden/traffic_hashes.json``),
and the decimal-string seed convention shared with :mod:`repro.io`.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from tests.golden.regenerate_traffic_goldens import (
    MESHES,
    SEEDS,
    STEPS,
    traffic_golden_cases,
)

from repro.mesh.mesh import Mesh
from repro.workloads.traffic import (
    TRAFFIC,
    DiurnalTraffic,
    FlashCrowdTraffic,
    HotspotTraffic,
    MMPPTraffic,
    PoissonTraffic,
    ReplayTraffic,
    ShiftingHotspotTraffic,
    adversarial_replay,
    make_traffic,
    stream_hash,
)

GOLDEN_PATH = Path(__file__).parent / "golden" / "traffic_hashes.json"

CASES = dict(traffic_golden_cases())


def load_goldens() -> dict[str, str]:
    assert GOLDEN_PATH.exists(), (
        f"golden file missing: {GOLDEN_PATH} — run "
        "tests/golden/regenerate_traffic_goldens.py"
    )
    return json.loads(GOLDEN_PATH.read_text())


class TestGoldenTraces:
    def test_goldens_cover_the_matrix(self):
        goldens = load_goldens()
        assert set(goldens) == set(CASES), (
            "golden matrix out of sync with traffic_golden_cases() — run "
            "tests/golden/regenerate_traffic_goldens.py"
        )
        # every registry generator, both meshes, both seeds
        assert len(goldens) == (len(TRAFFIC) + 1) * len(MESHES) * len(SEEDS)

    @pytest.mark.parametrize("key", sorted(CASES), ids=lambda k: k.replace("|", ","))
    def test_golden_cell(self, key):
        assert CASES[key]() == load_goldens()[key], (
            f"traffic trace changed for {key}: a stored seed now replays a "
            "different load history (regenerate_traffic_goldens.py --force "
            "if intentional)"
        )


class TestGenerators:
    def test_registry_builds_every_process(self, mesh8):
        for name in TRAFFIC:
            process = make_traffic(name)
            src, dst = process.arrivals_at(mesh8, 0, entropy=7)
            assert src.dtype == np.int64 and dst.dtype == np.int64
            assert src.shape == dst.shape

    def test_make_traffic_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="tsunami"):
            make_traffic("tsunami")

    def test_poisson_offered_load_is_rate_times_n(self, mesh8):
        t = PoissonTraffic(rate=0.25)
        assert t.offered_load(mesh8, 0) == pytest.approx(0.25 * 64)
        assert t.mean_load(mesh8, 10) == pytest.approx(0.25 * 64 * 10)

    def test_mmpp_offered_load_uses_stationary_mix(self, mesh8):
        t = MMPPTraffic(rate_on=0.4, rate_off=0.0, p_exit_on=0.5, p_exit_off=0.5)
        # stationary P(on) = 0.5 -> expected rate 0.2 per node
        assert t.offered_load(mesh8, 3) == pytest.approx(0.2 * 64)

    def test_diurnal_peaks_mid_period(self, mesh8):
        t = DiurnalTraffic(base_rate=0.1, peak_rate=0.5, period=100)
        assert t.rate_at(50) == pytest.approx(0.5)
        assert t.rate_at(0) == pytest.approx(0.1)
        assert t.rate_at(0) == pytest.approx(t.rate_at(100))

    def test_flash_crowd_spike_window(self, mesh8):
        t = FlashCrowdTraffic(
            base_rate=0.05, spike_rate=0.8, spike_start=10, spike_len=5
        )
        assert t.rate_at(9) == pytest.approx(0.05)
        assert t.rate_at(10) == pytest.approx(0.8)
        assert t.rate_at(14) == pytest.approx(0.8)
        assert t.rate_at(15) == pytest.approx(0.05)
        # the spike aims at the hot set: arrivals during it favour hot dests
        hot = set(t._hot_nodes(mesh8, 0).tolist())
        _, dst = t.arrivals_at(mesh8, 12, entropy=0)
        if dst.size:
            frac = sum(d in hot for d in dst.tolist()) / dst.size
            assert frac > 0.3

    def test_hotspot_concentrates_destinations(self, mesh8):
        t = HotspotTraffic(rate=0.5, hot_frac=0.1, hot_weight=0.9)
        hot = set(t._hot_nodes(mesh8, 0).tolist())
        assert len(hot) == max(1, int(0.1 * 64))
        dsts = np.concatenate(
            [t.arrivals_at(mesh8, s, entropy=0)[1] for s in range(30)]
        )
        frac = sum(d in hot for d in dsts.tolist()) / dsts.size
        assert frac > 0.6  # nominal 0.9 with sampling slack

    def test_shifting_hotspot_moves_the_hot_set(self, mesh8):
        t = ShiftingHotspotTraffic(rate=0.5, hot_frac=0.1, period=10)
        assert t._epoch(9) == 0 and t._epoch(10) == 1
        first = set(t._hot_nodes(mesh8, 0, epoch=0).tolist())
        later = set(t._hot_nodes(mesh8, 0, epoch=1).tolist())
        assert first != later

    def test_replay_cycles_problem_pairs(self, mesh8):
        from repro.workloads.permutations import transpose

        problem = transpose(mesh8)
        t = ReplayTraffic.from_problem(problem, rate=0.2)
        src, dst = t.arrivals_at(mesh8, 0, entropy=0)
        pairs = set(zip(problem.sources.tolist(), problem.dests.tolist()))
        assert set(zip(src.tolist(), dst.tolist())) <= pairs

    def test_adversarial_replay_targets_dim_order_pairs(self, mesh8):
        t = adversarial_replay(mesh8, "dim-order", l=4, rate=0.3)
        total = sum(
            t.arrivals_at(mesh8, s, entropy=1)[0].size for s in range(40)
        )
        assert total > 0

    def test_stream_yields_every_step(self, mesh8):
        steps = [s for s, _, _ in PoissonTraffic(rate=0.01).stream(mesh8, 20)]
        assert steps == list(range(20))

    def test_batches_concatenate_to_the_stream(self, mesh8):
        t = PoissonTraffic(rate=0.3)
        whole = [np.concatenate(cols) for cols in zip(*t.batches(mesh8, 40, seed=5, chunk_steps=40))]
        chunked = [
            np.concatenate(cols)
            for cols in zip(*t.batches(mesh8, 40, seed=5, chunk_steps=7))
        ]
        for a, b in zip(whole, chunked):
            np.testing.assert_array_equal(a, b)

    def test_stream_hash_is_chunk_invariant(self, mesh8):
        t = make_traffic("mmpp")
        assert stream_hash(t, mesh8, 50, seed=3, chunk_steps=50) == stream_hash(
            t, mesh8, 50, seed=3, chunk_steps=11
        )

    def test_arrivals_are_pure_in_entropy_and_step(self, mesh8):
        t = make_traffic("flash-crowd")
        for step in (0, 13, 51):
            a = t.arrivals_at(mesh8, step, entropy=9)
            b = t.arrivals_at(mesh8, step, entropy=9)
            np.testing.assert_array_equal(a[0], b[0])
            np.testing.assert_array_equal(a[1], b[1])


class TestDecimalStringSeeds:
    """The 128-bit decimal-string seed convention shared with repro.io."""

    BIG = (1 << 100) + 12345  # past int64: only the string form survives text

    def test_generators_accept_decimal_strings(self, mesh8):
        from repro.workloads.generators import local_traffic, random_pairs

        for factory in (lambda s: random_pairs(mesh8, 40, seed=s),
                        lambda s: local_traffic(mesh8, 3, seed=s)):
            by_int = factory(self.BIG)
            by_str = factory(str(self.BIG))
            np.testing.assert_array_equal(by_int.sources, by_str.sources)
            np.testing.assert_array_equal(by_int.dests, by_str.dests)

    def test_generators_reject_non_decimal_strings(self, mesh8):
        from repro.workloads.generators import random_pairs

        with pytest.raises(ValueError):
            random_pairs(mesh8, 4, seed="0xdeadbeef")

    def test_traffic_accepts_decimal_strings(self, mesh8):
        t = make_traffic("poisson")
        assert stream_hash(t, mesh8, 20, seed=self.BIG) == stream_hash(
            t, mesh8, 20, seed=str(self.BIG)
        )

    def test_roundtrip_through_io(self, mesh8, tmp_path):
        """Route with a 128-bit seed, persist, reload, replay from the
        stored decimal string — byte-identical paths and workload."""
        from repro.io import load_result, save_result
        from repro.routing.registry import make_router
        from repro.workloads.generators import random_pairs

        problem = random_pairs(mesh8, 30, seed=self.BIG)
        result = make_router("dim-order").route(problem, seed=self.BIG)
        save_result(tmp_path / "r.npz", result)
        loaded = load_result(tmp_path / "r.npz")
        assert loaded.seed == self.BIG  # survived the decimal-string format

        replayed_problem = random_pairs(mesh8, 30, seed=str(loaded.seed))
        np.testing.assert_array_equal(problem.sources, replayed_problem.sources)
        replayed = make_router("dim-order").route(
            replayed_problem, seed=str(loaded.seed)
        )
        np.testing.assert_array_equal(result.paths.nodes, replayed.paths.nodes)
        np.testing.assert_array_equal(result.paths.offsets, replayed.paths.offsets)
