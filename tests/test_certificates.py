"""Tests for worst-case stretch certificates (Theorem 3.4/4.2 sans sampling)."""

import numpy as np
import pytest

from repro.analysis.certificates import (
    certify_stretch,
    worst_case_path_length,
    worst_case_stretch,
)
from repro.analysis.theory import stretch_bound_2d, stretch_bound_general
from repro.core.path_selection import HierarchicalRouter
from repro.mesh.mesh import Mesh
from repro.mesh.paths import path_length


class TestWorstCaseBound:
    def test_dominates_sampled_paths(self):
        """The certificate really upper-bounds every sampled path."""
        mesh = Mesh((16, 16))
        router = HierarchicalRouter()
        rng = np.random.default_rng(0)
        for _ in range(80):
            s, t = (int(x) for x in rng.integers(mesh.n, size=2))
            if s == t:
                continue
            ceiling = worst_case_path_length(router, mesh, s, t)
            for _ in range(5):
                p = router.select_path(mesh, s, t, rng)
                assert path_length(p) <= ceiling

    def test_trivial_pair(self):
        mesh = Mesh((8, 8))
        assert worst_case_path_length(HierarchicalRouter(), mesh, 5, 5) == 0
        assert worst_case_stretch(HierarchicalRouter(), mesh, 5, 5) == 0.0

    def test_dominates_on_torus(self):
        torus = Mesh((16, 16), torus=True)
        router = HierarchicalRouter()
        rng = np.random.default_rng(1)
        for _ in range(40):
            s, t = (int(x) for x in rng.integers(torus.n, size=2))
            if s == t:
                continue
            ceiling = worst_case_path_length(router, torus, s, t)
            for _ in range(5):
                p = router.select_path(torus, s, t, rng)
                assert path_length(p) <= ceiling


class TestTheoremCertificates:
    @pytest.mark.parametrize("m", [4, 8])
    def test_theorem_3_4_certified_exhaustively(self, m):
        """Every pair of the mesh has certified stretch <= 64: the theorem
        holds over ALL random choices, not just sampled ones."""
        mesh = Mesh((m, m))
        cert = certify_stretch(
            HierarchicalRouter(), mesh, exhaustive_limit=m**4
        )
        assert cert["pairs"] == mesh.n * (mesh.n - 1)
        assert cert["worst_stretch"] <= stretch_bound_2d()

    def test_theorem_3_4_certified_dense_16(self):
        """Dense deterministic pair grid on 16x16 (full enumeration is a
        33s job; the strided grid covers every source row/column pattern)."""
        mesh = Mesh((16, 16))
        pairs = [
            (s, t)
            for s in range(0, mesh.n, 3)
            for t in range(0, mesh.n, 5)
            if s != t
        ]
        cert = certify_stretch(HierarchicalRouter(), mesh, pairs=pairs)
        assert cert["worst_stretch"] <= stretch_bound_2d()

    def test_theorem_4_2_certified_sampled(self):
        mesh = Mesh((8, 8, 8))
        rng = np.random.default_rng(2)
        pairs = [
            (int(a), int(b))
            for a, b in rng.integers(mesh.n, size=(400, 2))
            if a != b
        ]
        cert = certify_stretch(HierarchicalRouter(), mesh, pairs=pairs)
        assert cert["worst_stretch"] <= stretch_bound_general(3)

    def test_torus_certified(self):
        torus = Mesh((8, 8), torus=True)
        cert = certify_stretch(HierarchicalRouter(), torus)
        assert cert["worst_stretch"] <= stretch_bound_2d()

    def test_witness_reported(self):
        mesh = Mesh((4, 4))
        cert = certify_stretch(HierarchicalRouter(), mesh)
        s, t = cert["witness"]
        assert worst_case_stretch(HierarchicalRouter(), mesh, s, t) == cert[
            "worst_stretch"
        ]

    def test_exhaustive_limit_enforced(self):
        mesh = Mesh((32, 32))
        with pytest.raises(ValueError):
            certify_stretch(HierarchicalRouter(), mesh)

    def test_access_tree_certificate_is_worse(self):
        """The certificate also quantifies the ablation: without bridges
        the certified worst case explodes."""
        from repro.routing.baselines import AccessTreeRouter

        mesh = Mesh((16, 16))
        s, t = mesh.node(7, 8), mesh.node(8, 8)
        with_b = worst_case_stretch(HierarchicalRouter(), mesh, s, t)
        without = worst_case_stretch(AccessTreeRouter(), mesh, s, t)
        assert with_b <= 64
        assert without > 2 * with_b
