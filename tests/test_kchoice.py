"""Tests for κ-choice routers (Section 5.1)."""

import numpy as np
import pytest

from repro.core.path_selection import HierarchicalRouter
from repro.mesh.mesh import Mesh
from repro.routing.baselines import GreedyMinCongestionRouter
from repro.routing.kchoice import KChoiceRouter
from repro.workloads.adversarial import adversarial_for_router, block_exchange
from repro.workloads.generators import random_pairs


@pytest.fixture
def mesh():
    return Mesh((16, 16))


class TestConstruction:
    def test_k_validation(self):
        with pytest.raises(ValueError):
            KChoiceRouter(HierarchicalRouter(), 0)

    def test_requires_oblivious_base(self):
        with pytest.raises(ValueError):
            KChoiceRouter(GreedyMinCongestionRouter(), 2)

    def test_name_and_bits(self):
        r = KChoiceRouter(HierarchicalRouter(), 8)
        assert r.name == "hierarchical[k=8]"
        assert r.random_bits_per_packet() == 3.0


class TestMenus:
    def test_menu_size_and_validity(self, mesh):
        from repro.mesh.paths import is_valid_path

        r = KChoiceRouter(HierarchicalRouter(), 4)
        menu = r.menu(mesh, 3, 200)
        assert len(menu) == 4
        for p in menu:
            assert is_valid_path(mesh, p, 3, 200)

    def test_menu_deterministic_in_pair(self, mesh):
        a = KChoiceRouter(HierarchicalRouter(), 3, menu_seed=7)
        b = KChoiceRouter(HierarchicalRouter(), 3, menu_seed=7)
        for pa, pb in zip(a.menu(mesh, 0, 50), b.menu(mesh, 0, 50)):
            np.testing.assert_array_equal(pa, pb)

    def test_menu_seed_changes_menu(self, mesh):
        a = KChoiceRouter(HierarchicalRouter(), 4, menu_seed=1)
        b = KChoiceRouter(HierarchicalRouter(), 4, menu_seed=2)
        differs = any(
            len(pa) != len(pb) or not np.array_equal(pa, pb)
            for pa, pb in zip(a.menu(mesh, 0, 255), b.menu(mesh, 0, 255))
        )
        assert differs

    def test_selection_always_from_menu(self, mesh):
        r = KChoiceRouter(HierarchicalRouter(), 3)
        menu = [p.tolist() for p in r.menu(mesh, 5, 100)]
        rng = np.random.default_rng(0)
        for _ in range(20):
            assert r.select_path(mesh, 5, 100, rng).tolist() in menu

    def test_k1_is_deterministic(self, mesh):
        r = KChoiceRouter(HierarchicalRouter(), 1)
        prob = random_pairs(mesh, 15, seed=0)
        a = r.route(prob, seed=10)
        b = r.route(prob, seed=999)
        for pa, pb in zip(a.paths, b.paths):
            np.testing.assert_array_equal(pa, pb)


class TestLemma51:
    def test_congestion_decreases_with_k(self, mesh):
        """Lemma 5.1: on Π_A built for the κ = 1 restriction, expected
        congestion scales like l / (d κ)."""
        l = 8
        base = HierarchicalRouter()
        det = KChoiceRouter(base, 1)
        pi_a, hot_edge = adversarial_for_router(det, mesh, l)
        congestion = {}
        for k in (1, 4, 16):
            router = KChoiceRouter(base, k)
            cs = [router.route(pi_a, seed=s).edge_loads[hot_edge] for s in range(5)]
            congestion[k] = float(np.mean(cs))
        # k = 1 is forced to the full |Pi_A| on the hot edge
        assert congestion[1] == pi_a.num_packets
        # more choices spread the hot-edge load monotonically (on average)
        assert congestion[4] < congestion[1]
        assert congestion[16] <= congestion[4] + 1

    def test_block_exchange_average_argument(self, mesh):
        """The Section 5.1 averaging step: some edge carries >= l/d packets
        under any fixed path assignment of the block exchange."""
        det = KChoiceRouter(HierarchicalRouter(), 1)
        prob = block_exchange(mesh, 4)
        res = det.route(prob, seed=0)
        assert res.congestion >= 4 / mesh.d
