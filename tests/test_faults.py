"""Fault injection: model determinism, the fault-aware wrapper's
no-dead-edge guarantee and strict-no-op contract, and both simulators'
degradation accounting."""

import numpy as np
import pytest

from repro.core.path_selection import HierarchicalRouter
from repro.faults import (
    FaultAwareRouter,
    FaultModel,
    FaultRoutingError,
    shortest_alive_path,
)
from repro.mesh.mesh import Mesh
from repro.obs.profiler import Profiler
from repro.routing.base import RoutingProblem
from repro.simulation.online import simulate_online
from repro.simulation.scheduler import simulate
from repro.workloads.permutations import transpose


def _isolating_edges(mesh, node):
    """Edge ids of every link incident to ``node``."""
    return [
        int(mesh.edge_ids(np.asarray([node]), np.asarray([v]))[0])
        for v in mesh.neighbors(node)
    ]


class TestFaultModel:
    def test_static_mask_shape_and_determinism(self):
        mesh = Mesh((8, 8))
        a = FaultModel.static(mesh, p=0.1, seed=3).edge_alive()
        b = FaultModel.static(mesh, p=0.1, seed=3).edge_alive()
        assert a.shape == (mesh.num_edges,) and a.dtype == bool
        np.testing.assert_array_equal(a, b)
        assert not a.all()  # p = 0.1 on 112 edges: some fail
        # a different seed draws a different set
        c = FaultModel.static(mesh, p=0.1, seed=4).edge_alive()
        assert not np.array_equal(a, c)

    def test_static_mask_ignores_step(self):
        fm = FaultModel.static(Mesh((8, 8)), p=0.1, seed=0)
        np.testing.assert_array_equal(fm.edge_alive(0), fm.edge_alive(100))

    def test_node_failures_kill_incident_links(self):
        mesh = Mesh((8, 8))
        fm = FaultModel.static(mesh, p=0.0, node_p=0.1, seed=5)
        alive = fm.edge_alive()
        assert not alive.all()
        # every dead edge has at least one endpoint shared with another
        # dead edge (node deaths kill whole neighborhoods, not single links)
        dead = np.flatnonzero(~alive)
        ep = mesh.edge_endpoints[dead]
        nodes, counts = np.unique(ep, return_counts=True)
        assert (counts > 1).any()

    def test_blocks_are_spatially_correlated(self):
        mesh = Mesh((16, 16))
        fm = FaultModel.blocks(mesh, num_blocks=1, block_side=3, seed=2)
        dead = np.flatnonzero(~fm.edge_alive())
        assert dead.size > 0
        # all dead edges touch one 3x3 region (boundary links reach one
        # node beyond it, so the endpoint spread is at most block_side + 1)
        ep = mesh.edge_endpoints[dead]
        coords = mesh.flat_to_coords(ep.reshape(-1))
        spread = coords.max(axis=0) - coords.min(axis=0)
        assert (spread <= 4).all()

    def test_dynamic_replays_deterministically(self):
        mesh = Mesh((8, 8))
        fm1 = FaultModel.dynamic(mesh, p=0.02, repair_delay=5, seed=7)
        fm2 = FaultModel.dynamic(mesh, p=0.02, repair_delay=5, seed=7)
        masks = [fm1.edge_alive(s).copy() for s in range(12)]
        for s in range(12):
            np.testing.assert_array_equal(masks[s], fm2.edge_alive(s))
        # rewinding replays from the seed instead of drifting
        np.testing.assert_array_equal(fm1.edge_alive(4), masks[4])

    def test_dynamic_repairs(self):
        mesh = Mesh((8, 8))
        fm = FaultModel.dynamic(mesh, p=0.05, repair_delay=3, seed=1)
        ever_dead = np.zeros(mesh.num_edges, dtype=bool)
        revived = False
        prev = fm.edge_alive(0).copy()
        for s in range(1, 40):
            cur = fm.edge_alive(s)
            revived |= bool((cur & ~prev).any())
            ever_dead |= ~cur
            prev = cur.copy()
        assert ever_dead.any() and revived

    def test_from_failed_edges_explicit(self):
        mesh = Mesh((4, 4))
        fm = FaultModel.from_failed_edges(mesh, [0, 5])
        alive = fm.edge_alive()
        assert not alive[0] and not alive[5]
        assert alive.sum() == mesh.num_edges - 2
        assert not fm.is_trivial

    def test_trivial_detection(self):
        mesh = Mesh((4, 4))
        assert FaultModel.static(mesh, p=0.0).is_trivial
        assert FaultModel.blocks(mesh, num_blocks=0).is_trivial
        assert FaultModel.dynamic(mesh, p=0.0).is_trivial
        assert not FaultModel.static(mesh, p=0.5).is_trivial
        assert FaultModel.from_failed_edges(mesh, []).is_trivial

    def test_invalid_parameters_rejected(self):
        mesh = Mesh((4, 4))
        with pytest.raises(ValueError, match="mode"):
            FaultModel(mesh, "bogus")
        with pytest.raises(ValueError, match="probabilit"):
            FaultModel.static(mesh, p=1.5)
        with pytest.raises(ValueError, match="repair"):
            FaultModel.dynamic(mesh, p=0.1, repair_delay=0)


class TestAdjacencyCSR:
    def test_full_graph_matches_neighbors(self):
        mesh = Mesh((4, 4, 2))
        indptr, heads, eids = mesh.adjacency_csr()
        for u in range(mesh.n):
            assert sorted(heads[indptr[u] : indptr[u + 1]].tolist()) == mesh.neighbors(u)
        # the eid annotation is consistent with edge_ids
        for u in range(mesh.n):
            for v, e in zip(
                heads[indptr[u] : indptr[u + 1]], eids[indptr[u] : indptr[u + 1]]
            ):
                assert int(mesh.edge_ids(np.asarray([u]), np.asarray([int(v)]))[0]) == e

    def test_masked_graph_excludes_edges(self):
        mesh = Mesh((4, 4))
        mask = np.ones(mesh.num_edges, dtype=bool)
        mask[0] = False
        indptr, heads, eids = mesh.adjacency_csr(mask)
        assert 0 not in eids
        assert indptr[-1] == 2 * (mesh.num_edges - 1)

    def test_bad_mask_shape_rejected(self):
        mesh = Mesh((4, 4))
        with pytest.raises(ValueError, match="edge_mask"):
            mesh.adjacency_csr(np.ones(3, dtype=bool))


class TestShortestAlivePath:
    def test_no_faults_is_shortest(self):
        mesh = Mesh((8, 8))
        alive = np.ones(mesh.num_edges, dtype=bool)
        p = shortest_alive_path(mesh, 0, 63, alive)
        assert p[0] == 0 and p[-1] == 63
        assert len(p) - 1 == mesh.distance(0, 63)

    def test_detour_around_cut(self):
        mesh = Mesh((8, 8))
        fm = FaultModel.from_failed_edges(mesh, _isolating_edges(mesh, 1))
        alive = fm.edge_alive()
        p = shortest_alive_path(mesh, 0, 2, alive)
        assert p is not None and 1 not in p.tolist()
        assert alive[mesh.edge_ids(p[:-1], p[1:])].all()

    def test_unreachable_returns_none(self):
        mesh = Mesh((8, 8))
        fm = FaultModel.from_failed_edges(mesh, _isolating_edges(mesh, 0))
        assert shortest_alive_path(mesh, 0, 63, fm.edge_alive()) is None

    def test_trivial_endpoints(self):
        mesh = Mesh((4, 4))
        alive = np.ones(mesh.num_edges, dtype=bool)
        assert shortest_alive_path(mesh, 5, 5, alive).tolist() == [5]


class TestFaultAwareRouter:
    def test_trivial_faults_byte_identical(self):
        """The acceptance contract: FaultModel(p=0) is a strict no-op."""
        mesh = Mesh((16, 16))
        problem = transpose(mesh)
        bare = HierarchicalRouter().route(problem, seed=5)
        wrapped = FaultAwareRouter(
            HierarchicalRouter(), FaultModel.static(mesh, p=0.0)
        ).route(problem, seed=5)
        assert all(
            a.tobytes() == b.tobytes() for a, b in zip(bare.paths, wrapped.paths)
        )

    def test_never_crosses_a_failed_edge(self):
        """The acceptance contract: every emitted path respects the mask."""
        mesh = Mesh((16, 16))
        problem = transpose(mesh)
        for seed in (0, 1, 2):
            fm = FaultModel.static(mesh, p=0.05, seed=seed)
            router = FaultAwareRouter(HierarchicalRouter(), fm)
            result = router.route(problem, seed=seed)
            alive = fm.edge_alive()
            for path in result.paths:
                if len(path) > 1:
                    assert alive[mesh.edge_ids(path[:-1], path[1:])].all()
            assert result.validate()

    def test_unroutable_packets_dropped_to_subproblem(self):
        mesh = Mesh((8, 8))
        fm = FaultModel.from_failed_edges(mesh, _isolating_edges(mesh, 0))
        problem = RoutingProblem(mesh, np.asarray([0, 9]), np.asarray([63, 18]))
        router = FaultAwareRouter(HierarchicalRouter(), fm)
        result = router.route(problem, seed=1)
        assert router.unroutable == 1
        assert result.problem.num_packets == 1
        assert result.problem.sources.tolist() == [9]

    def test_select_path_raises_when_unreachable(self):
        mesh = Mesh((8, 8))
        fm = FaultModel.from_failed_edges(mesh, _isolating_edges(mesh, 0))
        router = FaultAwareRouter(HierarchicalRouter(), fm)
        with pytest.raises(FaultRoutingError):
            router.select_path(mesh, 0, 63, np.random.default_rng(0))

    def test_detour_fallback_after_resamples(self):
        # destination reachable only by one alive corridor: oblivious draws
        # keep failing, the BFS detour must kick in
        mesh = Mesh((8, 8))
        edges = [
            int(mesh.edge_ids(np.asarray([7]), np.asarray([v]))[0])
            for v in mesh.neighbors(7)
            if v != 6  # leave only the 6-7 link alive
        ]
        fm = FaultModel.from_failed_edges(mesh, edges)
        router = FaultAwareRouter(HierarchicalRouter(), fm, max_resamples=2)
        path = router.select_path(mesh, 56, 7, np.random.default_rng(0))
        alive = fm.edge_alive()
        assert alive[mesh.edge_ids(path[:-1], path[1:])].all()
        assert path[-1] == 7

    def test_rejects_non_oblivious_inner(self):
        from repro.routing.registry import make_router

        greedy = make_router("greedy-offline")
        with pytest.raises(ValueError, match="oblivious"):
            FaultAwareRouter(greedy, FaultModel.static(Mesh((4, 4)), p=0.1))

    def test_profiler_counters(self):
        mesh = Mesh((16, 16))
        fm = FaultModel.static(mesh, p=0.05, seed=0)
        router = FaultAwareRouter(HierarchicalRouter(), fm)
        router.profiler = Profiler()
        router.route(transpose(mesh), seed=0)
        counters = router.profiler.counters
        assert counters.get("faults.resamples", 0) + counters.get(
            "faults.detours", 0
        ) == router.resamples + router.detours > 0


class TestSimulateWithFaults:
    def test_trivial_faults_identical_results(self):
        mesh = Mesh((16, 16))
        res = HierarchicalRouter().route(transpose(mesh), seed=0)
        for pol in ("farthest-first", "fifo", "random", "random-delay"):
            a = simulate(mesh, res, policy=pol, seed=3)
            b = simulate(mesh, res, policy=pol, seed=3,
                         faults=FaultModel.static(mesh, p=0.0))
            assert a.makespan == b.makespan
            np.testing.assert_array_equal(a.delivery_times, b.delivery_times)

    def test_static_faults_deliver_with_reroutes(self):
        mesh = Mesh((16, 16))
        res = HierarchicalRouter().route(transpose(mesh), seed=0)
        fm = FaultModel.static(mesh, p=0.01, seed=2)
        out = simulate(mesh, res, seed=3, faults=fm)
        assert out.delivery_ratio > 0.9
        assert out.retries_total > 0
        assert out.num_packets == len(res.paths)
        # determinism under identical seeds
        out2 = simulate(mesh, res, seed=3, faults=FaultModel.static(mesh, p=0.01, seed=2))
        np.testing.assert_array_equal(out.delivery_times, out2.delivery_times)
        assert out.makespan == out2.makespan

    def test_unreachable_packet_dropped(self):
        mesh = Mesh((8, 8))
        fm = FaultModel.from_failed_edges(mesh, _isolating_edges(mesh, 0))
        problem = RoutingProblem(mesh, np.asarray([0, 17]), np.asarray([63, 34]))
        res = HierarchicalRouter().route(problem, seed=1)
        out = simulate(mesh, res, seed=0, faults=fm)
        assert out.dropped == 1
        assert out.delivery_times[0] == -1 and out.delivery_times[1] > 0
        assert out.delivered == 1 and out.delivery_ratio == 0.5

    def test_dynamic_faults_wait_out_repairs(self):
        mesh = Mesh((16, 16))
        res = HierarchicalRouter().route(transpose(mesh), seed=0)
        fd = FaultModel.dynamic(mesh, p=0.005, repair_delay=6, seed=4)
        out = simulate(mesh, res, policy="fifo", seed=3, faults=fd)
        assert out.delivery_ratio > 0.9
        assert out.dropped == 0  # repairs mean nobody is ever dropped

    def test_profiler_fault_counters(self):
        mesh = Mesh((16, 16))
        res = HierarchicalRouter().route(transpose(mesh), seed=0)
        prof = Profiler()
        fm = FaultModel.static(mesh, p=0.02, seed=2)
        out = simulate(mesh, res, seed=3, faults=fm, profiler=prof)
        assert prof.counters.get("faults.blocked_steps", 0) == out.retries_total > 0

    def test_fault_free_run_keeps_max_steps_guard(self):
        # the pre-existing RuntimeError contract must hold when faults=None
        mesh = Mesh((8, 8))
        res = HierarchicalRouter().route(transpose(mesh), seed=0)
        with pytest.raises(RuntimeError, match="exceeded"):
            simulate(mesh, res, max_steps=1)


class TestOnlineWithFaults:
    def test_trivial_faults_identical_stats(self):
        mesh = Mesh((8, 8))
        a = simulate_online(HierarchicalRouter(), mesh, rate=0.05, steps=30, seed=3)
        b = simulate_online(
            HierarchicalRouter(), mesh, rate=0.05, steps=30, seed=3,
            faults=FaultModel.static(mesh, p=0.0),
        )
        assert a.injected == b.injected and a.delivered == b.delivered
        np.testing.assert_array_equal(a.latencies, b.latencies)
        assert a.max_queue == b.max_queue

    def test_static_faults_high_delivery(self):
        mesh = Mesh((8, 8))
        fm = FaultModel.static(mesh, p=0.02, seed=1)
        s = simulate_online(
            HierarchicalRouter(), mesh, rate=0.05, steps=40, seed=3, faults=fm
        )
        assert s.delivery_ratio > 0.9
        assert s.resamples > 0  # selection had to dodge dead edges
        assert (s.latencies >= s.distances).all()

    def test_dynamic_faults_block_and_reroute(self):
        mesh = Mesh((8, 8))
        fd = FaultModel.dynamic(mesh, p=0.01, repair_delay=4, seed=9)
        s = simulate_online(
            HierarchicalRouter(), mesh, rate=0.05, steps=40, seed=3, faults=fd
        )
        assert s.blocked_steps > 0
        assert s.delivery_ratio > 0.8

    def test_deterministic_under_fixed_seeds(self):
        mesh = Mesh((8, 8))
        runs = [
            simulate_online(
                HierarchicalRouter(), mesh, rate=0.05, steps=40, seed=3,
                faults=FaultModel.dynamic(mesh, p=0.01, repair_delay=4, seed=9),
            )
            for _ in range(2)
        ]
        assert runs[0].injected == runs[1].injected
        np.testing.assert_array_equal(runs[0].latencies, runs[1].latencies)
        assert runs[0].reroutes == runs[1].reroutes
        assert runs[0].blocked_steps == runs[1].blocked_steps

    def test_prewrapped_router_equivalent(self):
        mesh = Mesh((8, 8))
        fm = FaultModel.static(mesh, p=0.02, seed=1)
        plain = simulate_online(
            HierarchicalRouter(), mesh, rate=0.05, steps=30, seed=3, faults=fm
        )
        wrapped = simulate_online(
            FaultAwareRouter(
                HierarchicalRouter(), FaultModel.static(mesh, p=0.02, seed=1)
            ),
            mesh, rate=0.05, steps=30, seed=3,
        )
        assert plain.injected == wrapped.injected
        np.testing.assert_array_equal(plain.latencies, wrapped.latencies)
