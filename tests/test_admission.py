"""Admission control: the policy machinery and its byte-identity contract.

The load-bearing claim (docs/WORKLOADS.md): path selection happens before
admission from per-packet streams keyed by global injection index, so the
policy can only change *when* packets enter the network — never which
path they take.  ``admission=None`` must be byte-identical to the
pre-feature simulator, and a policy so loose it never binds must be
byte-identical to ``admission=None``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mesh.mesh import Mesh
from repro.obs import Profiler
from repro.routing.registry import make_router
from repro.simulation import (
    AdmissionParams,
    AdmissionState,
    SLOParams,
    simulate,
    simulate_online,
)
from repro.workloads.generators import random_pairs
from repro.workloads.traffic import HotspotTraffic, PoissonTraffic


class TestAdmissionParams:
    def test_rejects_a_no_op_policy(self):
        with pytest.raises(ValueError, match="no-op"):
            AdmissionParams()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rate_limit": 0.0},
            {"rate_limit": -1.0},
            {"rate_limit": 2.0, "burst": 0.5},
            {"max_backlog": 0},
            {"max_wait": 0},
        ],
    )
    def test_rejects_invalid_fields(self, kwargs):
        with pytest.raises(ValueError):
            AdmissionParams(**kwargs)

    def test_default_burst_is_the_rate(self):
        assert AdmissionParams(rate_limit=4.0).effective_burst == 4.0
        assert AdmissionParams(rate_limit=0.25).effective_burst == 1.0
        assert AdmissionParams(rate_limit=2.0, burst=8).effective_burst == 8.0


class TestAdmissionState:
    def test_token_bucket_paces_admissions(self):
        adm = AdmissionState(AdmissionParams(rate_limit=2.0))
        adm.push(range(10))
        admitted_per_step = []
        for step in range(1, 6):
            admitted, shed = adm.step_admit(step, in_network=0)
            assert shed == []
            admitted_per_step.append(len(admitted))
        # refill is capped at the burst (== rate), so pacing is flat
        assert admitted_per_step == [2, 2, 2, 2, 2]
        assert adm.admitted == 10 and len(adm) == 0

    def test_burst_allows_catchup_after_quiet(self):
        adm = AdmissionState(AdmissionParams(rate_limit=1.0, burst=5))
        for step in range(1, 5):  # quiet: bucket climbs to its cap
            adm.step_admit(step, in_network=0)
        adm.push(range(7))
        admitted, _ = adm.step_admit(5, in_network=0)
        assert len(admitted) == 5  # the full burst, then pace resumes

    def test_backpressure_holds_at_the_backlog_cap(self):
        adm = AdmissionState(AdmissionParams(max_backlog=3))
        adm.push(range(6))
        admitted, _ = adm.step_admit(1, in_network=2)
        assert admitted == [0]  # 2 in network + 1 admitted == cap
        admitted, _ = adm.step_admit(2, in_network=0)
        assert admitted == [1, 2, 3]
        assert adm.throttled_steps >= 1

    def test_max_wait_sheds_the_stale_prefix(self):
        adm = AdmissionState(AdmissionParams(rate_limit=1.0, max_wait=3))
        adm.push(range(5))
        born = np.zeros(5, dtype=np.int64)
        adm.step_admit(1, in_network=0, born=born)  # admits 0
        admitted, shed = adm.step_admit(4, in_network=0, born=born)
        # packets born at 0 have now waited 4 >= max_wait: shed before admit
        assert len(admitted) + len(shed) > 0
        assert shed and all(s in (1, 2, 3, 4) for s in shed)
        assert adm.dropped == len(shed)

    def test_counters_wire_format(self):
        adm = AdmissionState(AdmissionParams(rate_limit=1.0))
        adm.push(range(3))
        adm.step_admit(1, in_network=0)
        counters = adm.counters()
        assert set(counters) == {
            "admission.admitted",
            "admission.dropped",
            "admission.delayed_steps",
            "admission.throttled_steps",
        }
        assert counters["admission.admitted"] == 1


def _online(mesh, admission, workers=1, **kwargs):
    return simulate_online(
        make_router("hierarchical"),
        mesh,
        traffic=PoissonTraffic(rate=0.2),
        steps=15,
        seed=3,
        admission=admission,
        workers=workers,
        **kwargs,
    )


class TestOnlineByteIdentity:
    def test_disabled_equals_never_binding(self):
        """A policy too loose to ever bind admits every packet the step it
        is born — the whole run, latencies included, matches
        ``admission=None`` byte for byte."""
        mesh = Mesh((8, 8))
        base = _online(mesh, None)
        loose = _online(
            mesh, AdmissionParams(rate_limit=1e9, max_backlog=10**9)
        )
        assert loose.injected == base.injected
        assert loose.delivered == base.delivered
        assert loose.steps == base.steps
        np.testing.assert_array_equal(loose.latencies, base.latencies)
        assert loose.admission_dropped == 0

    def test_disabled_is_shard_invariant_with_rate_api(self):
        mesh = Mesh((8, 8))
        runs = [
            simulate_online(
                make_router("hierarchical"),
                mesh,
                rate=0.1,
                steps=15,
                seed=7,
                workers=w,
            )
            for w in (1, 2)
        ]
        np.testing.assert_array_equal(runs[0].latencies, runs[1].latencies)

    def test_enabled_is_shard_invariant_too(self):
        mesh = Mesh((8, 8))
        adm = AdmissionParams(rate_limit=3.0, max_backlog=20)
        a = _online(mesh, adm, workers=1)
        b = _online(mesh, adm, workers=3)
        np.testing.assert_array_equal(a.latencies, b.latencies)
        assert a.admission_dropped == b.admission_dropped

    def test_throttling_defers_but_conserves_packets(self):
        mesh = Mesh((8, 8))
        base = _online(mesh, None)
        slow = _online(mesh, AdmissionParams(rate_limit=2.0))
        assert slow.injected == base.injected
        assert slow.delivered == base.delivered  # no shed rule: all arrive
        assert slow.steps > base.steps  # paying for the pacing in time
        assert slow.admission_delayed_steps > 0

    def test_backpressure_caps_peak_backlog(self):
        mesh = Mesh((8, 8))
        traffic = HotspotTraffic(rate=0.6, hot_frac=0.05, hot_weight=0.9)
        kwargs = dict(traffic=traffic, steps=40, seed=0, slo=SLOParams())
        router = make_router("hierarchical")
        base = simulate_online(router, mesh, **kwargs)
        capped = simulate_online(
            router, mesh, admission=AdmissionParams(max_backlog=50), **kwargs
        )
        assert capped.peak_backlog <= 50 < base.peak_backlog
        assert capped.slo.backlog_p99 < base.slo.backlog_p99

    def test_max_wait_sheds_are_counted(self):
        mesh = Mesh((8, 8))
        shedding = _online(
            mesh, AdmissionParams(rate_limit=1.0, max_wait=5)
        )
        assert shedding.admission_dropped > 0
        assert (
            shedding.delivered + shedding.admission_dropped == shedding.injected
        )

    def test_profiler_carries_admission_counters(self):
        mesh = Mesh((8, 8))
        profiler = Profiler()
        _online(
            mesh, AdmissionParams(rate_limit=2.0), profiler=profiler
        )
        counters = profiler.counters
        assert counters["admission.admitted"] > 0
        assert "admission.throttled_steps" in counters


class TestSchedulerAdmission:
    def test_pacing_stretches_makespan_without_losses(self):
        mesh = Mesh((8, 8))
        problem = random_pairs(mesh, 120, seed=0)
        router = make_router("hierarchical")
        result = router.route(problem, seed=0)
        free = simulate(mesh, result.paths)
        paced = simulate(
            mesh, result.paths, admission=AdmissionParams(rate_limit=4.0)
        )
        assert paced.delivery_times.min() >= 0  # everything delivered
        assert paced.makespan > free.makespan
        assert paced.admission_dropped == 0

    def test_max_wait_sheds_and_accounts(self):
        mesh = Mesh((8, 8))
        problem = random_pairs(mesh, 200, seed=1)
        router = make_router("hierarchical")
        result = router.route(problem, seed=1)
        res = simulate(
            mesh,
            result.paths,
            admission=AdmissionParams(rate_limit=2.0, max_wait=20),
        )
        assert res.admission_dropped > 0
        delivered = int((res.delivery_times >= 0).sum())
        assert delivered + res.admission_dropped == 200
