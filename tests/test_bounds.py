"""Tests for the C* lower bounds (boundary congestion, LP, average load)."""

import numpy as np
import pytest

from repro.mesh.mesh import Mesh
from repro.metrics.bounds import (
    average_load_lower_bound,
    boundary_congestion,
    boundary_congestion_exact,
    congestion_lower_bound,
    lp_congestion_lower_bound,
)
from repro.routing.baselines import GreedyMinCongestionRouter
from repro.workloads.generators import all_to_one, random_pairs
from repro.workloads.permutations import bit_complement, transpose


class TestBoundaryCongestion:
    def test_single_hot_node(self):
        """All-to-one: the target's 4 incident edges carry n-1 paths."""
        mesh = Mesh((8, 8))
        prob = all_to_one(mesh)
        b = boundary_congestion(mesh, prob.sources, prob.dests)
        assert b >= (mesh.n - 1) / 4

    def test_fast_is_lower_bound_of_exact(self):
        mesh = Mesh((4, 4))
        for seed in range(5):
            prob = random_pairs(mesh, 12, seed=seed)
            fast = boundary_congestion(mesh, prob.sources, prob.dests)
            exact = boundary_congestion_exact(mesh, prob.sources, prob.dests)
            assert fast <= exact + 1e-9

    def test_fast_close_to_exact_on_structured(self):
        mesh = Mesh((8, 8))
        prob = bit_complement(mesh)
        fast = boundary_congestion(mesh, prob.sources, prob.dests)
        exact = boundary_congestion_exact(mesh, prob.sources, prob.dests)
        assert fast <= exact + 1e-9
        assert fast >= 0.5 * exact  # window family is a good proxy

    def test_empty_problem(self):
        mesh = Mesh((4, 4))
        empty = np.asarray([], dtype=np.int64)
        assert boundary_congestion(mesh, empty, empty) == 0.0

    def test_no_crossing_traffic(self):
        """Packets fully inside one half never cross its boundary."""
        mesh = Mesh((4, 4))
        sources = np.asarray([mesh.node(0, 0)])
        dests = np.asarray([mesh.node(0, 1)])
        b = boundary_congestion(mesh, sources, dests)
        assert 0 < b <= 1.0

    def test_is_lower_bound_on_any_routing(self):
        """B <= C for every router on every workload (Section 2: C >= B)."""
        from repro.core.path_selection import HierarchicalRouter
        from repro.routing.baselines import DimensionOrderRouter

        mesh = Mesh((8, 8))
        for prob in (transpose(mesh), random_pairs(mesh, 64, seed=1)):
            b = boundary_congestion(mesh, prob.sources, prob.dests)
            for router in (HierarchicalRouter(), DimensionOrderRouter()):
                c = router.route(prob, seed=0).congestion
                assert c >= b - 1e-9


class TestAverageLoad:
    def test_formula(self):
        mesh = Mesh((4, 4))
        sources = np.asarray([0])
        dests = np.asarray([15])
        assert average_load_lower_bound(mesh, sources, dests) == 6 / mesh.num_edges

    def test_empty(self):
        mesh = Mesh((4, 4))
        e = np.asarray([], dtype=np.int64)
        assert average_load_lower_bound(mesh, e, e) == 0.0


class TestLP:
    def test_all_to_one_exact(self):
        """All-to-one on 4x4: every path must enter the target through one
        of its 4 edges, so the LP optimum is exactly (n-1)/4."""
        mesh = Mesh((4, 4))
        prob = all_to_one(mesh)
        val = lp_congestion_lower_bound(mesh, prob.sources, prob.dests)
        assert val == pytest.approx(15 / 4, rel=1e-6)

    def test_single_packet(self):
        mesh = Mesh((4, 4))
        val = lp_congestion_lower_bound(mesh, np.asarray([0]), np.asarray([15]))
        assert 0 < val <= 1.0 + 1e-9

    def test_dominates_is_true_lower_bound(self):
        """LP <= congestion achieved by the strongest router we have."""
        mesh = Mesh((4, 4))
        prob = transpose(mesh)
        val = lp_congestion_lower_bound(mesh, prob.sources, prob.dests)
        best = GreedyMinCongestionRouter().route(prob, seed=0).congestion
        assert val <= best + 1e-9

    def test_at_least_boundary(self):
        """The LP is at least as strong as boundary congestion."""
        mesh = Mesh((4, 4))
        for seed in range(3):
            prob = random_pairs(mesh, 10, seed=seed)
            lp = lp_congestion_lower_bound(mesh, prob.sources, prob.dests)
            b = boundary_congestion_exact(mesh, prob.sources, prob.dests)
            assert lp >= b - 1e-6

    def test_self_packets_ignored(self):
        mesh = Mesh((4, 4))
        val = lp_congestion_lower_bound(mesh, np.asarray([3]), np.asarray([3]))
        assert val == 0.0

    def test_size_cap(self):
        mesh = Mesh((16, 16))
        prob = random_pairs(mesh, 200, seed=0)
        with pytest.raises(ValueError):
            lp_congestion_lower_bound(
                mesh, prob.sources, prob.dests, max_variables=1000
            )


class TestCombined:
    def test_at_least_one_for_nontrivial(self):
        mesh = Mesh((8, 8))
        bound = congestion_lower_bound(mesh, np.asarray([0]), np.asarray([1]))
        assert bound >= 1.0

    def test_uses_lp_when_forced(self):
        mesh = Mesh((4, 4))
        prob = all_to_one(mesh)
        with_lp = congestion_lower_bound(
            mesh, prob.sources, prob.dests, use_lp=True
        )
        assert with_lp == pytest.approx(15 / 4, rel=1e-6)

    def test_zero_for_empty(self):
        mesh = Mesh((4, 4))
        e = np.asarray([], dtype=np.int64)
        assert congestion_lower_bound(mesh, e, e, use_lp=False) == 0.0
