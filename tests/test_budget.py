"""Tests for the first-class randomness budget (Section 5 engineering).

Covers the validated configuration (:class:`BudgetParams`), the planned
per-packet cost models, the deterministic degradation ladder, the
:class:`BitBudget` ledger arithmetic, and the end-to-end contracts the
budget layer promises:

* the default ``enforce`` ceiling never degrades any registry router —
  budgeted routes stay byte-identical to unbudgeted ones;
* ``measure`` mode is pure telemetry (bytes unchanged, ledger filled);
* degradation is a deterministic function of ``(mesh, s, t)`` — batch,
  scalar and replayed runs agree to the byte.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.core.budget import (
    BUDGET_ENV,
    BitBudget,
    BudgetParams,
    default_budget_bits,
    degradation_plan,
    note_budget,
    perm_bits,
    planned_fresh_bits,
    planned_recycled_bits,
    sequence_fresh_bits,
    sequence_recycled_bits,
)
from repro.core.path_selection import HierarchicalRouter
from repro.faults.model import FaultModel
from repro.faults.router import FaultAwareRouter
from repro.mesh.mesh import Mesh
from repro.routing.registry import available_routers, make_router
from repro.workloads.generators import random_pairs
from repro.workloads.permutations import transpose


def digest(paths) -> str:
    h = hashlib.sha256()
    h.update(paths.nodes.tobytes())
    h.update(paths.offsets.tobytes())
    return h.hexdigest()


# ---------------------------------------------------------------------------
# BudgetParams: validation, env resolution, the guard idiom.
# ---------------------------------------------------------------------------

class TestBudgetParams:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown budget mode"):
            BudgetParams(mode="strict")

    def test_bits_validation(self):
        with pytest.raises(ValueError):
            BudgetParams(mode="enforce", bits=-1)
        with pytest.raises(TypeError):
            BudgetParams(mode="enforce", bits=True)
        with pytest.raises(TypeError):
            BudgetParams(mode="enforce", bits=3.5)
        assert BudgetParams(mode="enforce", bits=np.int64(24)).bits == 24

    def test_resolve_coercions(self):
        assert BudgetParams.resolve("measure").mode == "measure"
        p = BudgetParams.resolve(24)
        assert (p.mode, p.bits) == ("enforce", 24)
        q = BudgetParams(mode="enforce", bits=7)
        assert BudgetParams.resolve(q) is q
        with pytest.raises(TypeError):
            BudgetParams.resolve(True)
        with pytest.raises(TypeError):
            BudgetParams.resolve(object())

    def test_resolve_none_reads_env(self, monkeypatch):
        monkeypatch.delenv(BUDGET_ENV, raising=False)
        assert BudgetParams.resolve(None).mode == "off"
        monkeypatch.setenv(BUDGET_ENV, "enforce")
        p = BudgetParams.resolve(None)
        assert p.mode == "enforce" and p.valid

    def test_invalid_env_value_degrades_loudly(self, monkeypatch):
        monkeypatch.setenv(BUDGET_ENV, "yes-please")
        p = BudgetParams.from_env()
        assert not p.valid
        assert p.mode == "off"
        assert "yes-please" in p.reason

    def test_invalidated_guard_disables_enforcement_only(self):
        p = BudgetParams(mode="enforce", bits=8)
        assert p.enforcing and p.active
        weak = p.invalidated("because")
        assert not weak.enforcing
        assert weak.active  # telemetry survives the tripped guard
        assert weak.reason == "because"

    def test_limit_for_defaults_to_structural_ceiling(self):
        mesh = Mesh((8, 8))
        assert BudgetParams(mode="enforce", bits=13).limit_for(mesh) == 13
        assert BudgetParams(mode="enforce").limit_for(mesh) == default_budget_bits(
            mesh
        )


# ---------------------------------------------------------------------------
# Planned costs: vectorised == scalar, and the default ceiling dominates.
# ---------------------------------------------------------------------------

class TestPlannedCosts:
    def test_perm_bits_matches_fisher_yates_widths(self):
        # sum of bits_for_range(i) for i = 2..d
        assert [perm_bits(d) for d in range(1, 6)] == [0, 1, 3, 5, 8]

    def test_padded_slots_are_structurally_free(self):
        # one real 4x2 box + one padded single-node slot
        box_len = np.array([[[4, 2], [1, 1]]])
        alive = np.array([True])
        got = planned_fresh_bits(box_len, "fixed", alive)
        assert got.tolist() == [2 + 1]  # bits_for_range(4) + bits_for_range(2)

    def test_dead_packets_cost_nothing(self):
        box_len = np.ones((3, 2, 2), dtype=np.int64) * 4
        alive = np.array([True, False, True])
        for order in ("random", "shared", "fixed"):
            got = planned_fresh_bits(box_len, order, alive)
            assert got[1] == 0 and (got[[0, 2]] > 0).all()

    def test_order_cost_ladder(self):
        box_len = np.array([[[4, 4]]])  # one inner box, d=2
        alive = np.array([True])
        fixed = planned_fresh_bits(box_len, "fixed", alive)[0]
        shared = planned_fresh_bits(box_len, "shared", alive)[0]
        rand = planned_fresh_bits(box_len, "random", alive)[0]
        assert shared == fixed + perm_bits(2)
        assert rand == fixed + 2 * perm_bits(2)  # n_inner + 1 subpaths

    def test_recycled_prices_the_bridge(self):
        box_len = np.array([[[4, 2], [2, 8]]])
        alive = np.array([True])
        got = planned_recycled_bits(box_len, alive)[0]
        # bridge sides = per-dimension max (4, 8): two masters + one ordering
        assert got == 2 * (2 + 3) + perm_bits(2)

    def test_sequence_helpers_match_vectorised(self):
        class Box:
            def __init__(self, sides):
                self.sides = sides

        boxes = [Box((4, 2)), Box((2, 8))]
        box_len = np.array([[[4, 2], [2, 8]]])
        alive = np.array([True])
        for order in ("random", "shared", "fixed"):
            assert sequence_fresh_bits(boxes, order, 2) == planned_fresh_bits(
                box_len, order, alive
            )[0]
        assert sequence_recycled_bits((4, 8), 2) == planned_recycled_bits(
            box_len, alive
        )[0]

    @pytest.mark.parametrize(
        "sides,torus",
        [((8, 8), False), ((16, 16), False), ((8, 8), True), ((8, 4), False),
         ((4, 4, 4), False)],
    )
    def test_default_ceiling_dominates_every_registry_router(self, sides, torus):
        """The promise behind ``REPRO_BUDGET=enforce`` in CI: the default
        ceiling exceeds every metered router's planned cost, so enforcing
        it degrades nothing."""
        mesh = Mesh(sides, torus=torus)
        problem = random_pairs(mesh, 40, seed=3)
        ceiling = default_budget_bits(mesh)
        for name in available_routers():
            router = make_router(name)
            try:
                cost = router.planned_bits(problem)
            except Exception:
                continue  # mesh family unsupported by this router
            if cost is None:
                continue
            assert int(np.max(cost)) <= ceiling, name


# ---------------------------------------------------------------------------
# The degradation ladder.
# ---------------------------------------------------------------------------

class TestDegradationPlan:
    def test_masks_partition_the_packets(self):
        fresh = np.array([3, 10, 25, 0])
        recycled = np.array([2, 8, 20, 0])
        ok, use_rec, use_dim = degradation_plan(fresh, recycled, limit=9)
        assert ok.tolist() == [True, False, False, True]
        assert use_rec.tolist() == [False, True, False, False]
        assert use_dim.tolist() == [False, False, True, False]
        combined = ok.astype(int) + use_rec.astype(int) + use_dim.astype(int)
        assert (combined == 1).all()

    def test_no_recycled_scheme_goes_straight_to_dimorder(self):
        fresh = np.array([3, 10])
        ok, use_rec, use_dim = degradation_plan(fresh, None, limit=5)
        assert use_rec.tolist() == [False, False]
        assert use_dim.tolist() == [False, True]


# ---------------------------------------------------------------------------
# BitBudget ledger arithmetic.
# ---------------------------------------------------------------------------

class TestBitBudget:
    def test_merge_is_additive(self):
        a = BitBudget(mode="enforce", limit=24, packets=10, metered=9,
                      unmetered=1, bits_drawn=100, max_bits=20,
                      fallbacks_recycled=2, fallbacks_dimorder=1)
        b = BitBudget(mode="enforce", limit=24, packets=5, metered=5,
                      bits_drawn=60, max_bits=23, fallbacks_recycled=1)
        a.merge(b)
        assert (a.packets, a.metered, a.unmetered) == (15, 14, 1)
        assert a.bits_drawn == 160
        assert a.max_bits == 23
        assert a.fallbacks == 4

    def test_merge_adopts_missing_limit(self):
        a = BitBudget(mode="enforce")
        a.merge(BitBudget(mode="enforce", limit=16))
        assert a.limit == 16

    def test_bits_per_packet_guards_empty(self):
        assert BitBudget().bits_per_packet == 0.0
        led = BitBudget(metered=4, bits_drawn=10)
        assert led.bits_per_packet == 2.5
        assert led.to_dict()["bits_per_packet"] == 2.5

    def test_note_budget_counters(self):
        from repro.obs import Profiler

        prof = Profiler()
        note_budget(prof, None)  # no-op safe
        note_budget(None, BitBudget(packets=3))
        led = BitBudget(packets=3, bits_drawn=30, fallbacks_dimorder=1,
                        unmetered=2)
        note_budget(prof, led)
        assert prof.counters["budget.packets"] == 3
        assert prof.counters["budget.bits_drawn"] == 30
        assert prof.counters["budget.fallbacks"] == 1
        assert prof.counters["budget.unmetered"] == 2


# ---------------------------------------------------------------------------
# End-to-end contracts through Router.route(budget=...).
# ---------------------------------------------------------------------------

class TestRouteBudget:
    def test_off_mode_has_no_ledger(self, mesh8, monkeypatch):
        monkeypatch.delenv(BUDGET_ENV, raising=False)
        res = HierarchicalRouter().route(transpose(mesh8), seed=0)
        assert res.budget is None

    def test_measure_mode_is_pure_telemetry(self, mesh8):
        problem = transpose(mesh8)
        base = HierarchicalRouter().route(problem, seed=0)
        measured = HierarchicalRouter().route(problem, seed=0, budget="measure")
        assert digest(measured.paths) == digest(base.paths)
        led = measured.budget
        assert led.mode == "measure"
        assert led.packets == problem.num_packets
        assert led.metered == problem.num_packets and led.unmetered == 0
        assert led.bits_drawn > 0 and led.fallbacks == 0

    def test_default_enforce_degrades_nothing(self, mesh8):
        problem = transpose(mesh8)
        base = HierarchicalRouter().route(problem, seed=0)
        enforced = HierarchicalRouter().route(problem, seed=0, budget="enforce")
        assert digest(enforced.paths) == digest(base.paths)
        assert enforced.budget.fallbacks == 0
        assert enforced.budget.limit == default_budget_bits(mesh8)

    def test_tight_cap_respected_and_deterministic(self, mesh8):
        problem = transpose(mesh8)
        router = HierarchicalRouter()
        a = router.route(problem, seed=0, budget=16)
        led = a.budget
        assert led.mode == "enforce" and led.limit == 16
        assert led.max_bits <= 16
        assert led.fallbacks_recycled > 0  # the cap actually bites
        # replay is deterministic per mode (batch and scalar are separate
        # pinned byte contracts), and the planned-cost ledger — being a
        # pure function of (mesh, s, t) — is identical across both
        b = router.route(problem, seed=0, budget=16)
        assert digest(a.paths) == digest(b.paths)
        c = router.route(problem, seed=0, budget=16, batch=False)
        c2 = router.route(problem, seed=0, budget=16, batch=False)
        assert digest(c.paths) == digest(c2.paths)
        assert b.budget.to_dict() == led.to_dict() == c.budget.to_dict()

    def test_zero_cap_forces_dimension_order(self, mesh8):
        problem = transpose(mesh8)
        res = HierarchicalRouter().route(problem, seed=0, budget=0)
        led = res.budget
        alive = int((problem.sources != problem.dests).sum())
        assert led.fallbacks_dimorder == alive
        assert led.bits_drawn == 0 and led.max_bits == 0
        # zero random bits means a fully deterministic route
        other = HierarchicalRouter().route(problem, seed=999, budget=0)
        assert digest(res.paths) == digest(other.paths)

    def test_env_default_matches_explicit_mode(self, mesh8, monkeypatch):
        problem = transpose(mesh8)
        explicit = HierarchicalRouter().route(problem, seed=1, budget="enforce")
        monkeypatch.setenv(BUDGET_ENV, "enforce")
        implicit = HierarchicalRouter().route(problem, seed=1)
        assert digest(implicit.paths) == digest(explicit.paths)
        assert implicit.budget.to_dict() == explicit.budget.to_dict()

    def test_unmetered_router_never_degrades(self):
        """rect-hierarchical supplies no cost model: budget accounting
        records its packets as unmetered and enforcement steps aside."""
        mesh = Mesh((8, 4))
        router = make_router("rect-hierarchical")
        problem = random_pairs(mesh, 24, seed=7)
        if router.planned_bits(problem) is not None:
            pytest.skip("rect-hierarchical grew a cost model; update this test")
        base = router.route(problem, seed=2)
        res = router.route(problem, seed=2, budget=1)
        assert digest(res.paths) == digest(base.paths)
        led = res.budget
        assert led.unmetered == problem.num_packets and led.metered == 0
        assert led.fallbacks == 0

    def test_faulty_route_respects_budget(self, mesh8):
        problem = random_pairs(mesh8, 48, seed=5)
        faults = FaultModel.static(mesh8, p=0.08, seed=1)
        router = FaultAwareRouter(HierarchicalRouter(), faults)
        res = router.route(problem, seed=4, budget=20)
        led = res.budget
        assert led.mode == "enforce" and led.max_bits <= 20
        assert led.metered + led.unmetered == led.packets
        # deterministic under replay, including detours and resamples
        again = FaultAwareRouter(HierarchicalRouter(), faults).route(
            problem, seed=4, budget=20
        )
        assert digest(res.paths) == digest(again.paths)
        assert again.budget.to_dict() == led.to_dict()
