"""Property-based tests (hypothesis) for the path-selection algorithm.

These drive the core theorems as *universally quantified* properties over
random meshes (dimension, size, torus flag), random endpoint pairs and
random seeds — the strongest form of the reproduction's correctness claims.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.theory import stretch_bound_2d, stretch_bound_general
from repro.core.bridges import bridge_height_bound_2d, common_ancestor_2d
from repro.core.decomposition import Decomposition
from repro.core.path_selection import HierarchicalRouter
from repro.mesh.mesh import Mesh
from repro.mesh.paths import is_valid_path, path_length


@st.composite
def pow2_mesh_and_pair(draw, max_d: int = 3, max_k: int = 4, torus=None):
    d = draw(st.integers(1, max_d))
    k = draw(st.integers(1, max_k if d < 3 else 3))
    is_torus = draw(st.booleans()) if torus is None else torus
    mesh = Mesh(((1 << k),) * d, torus=is_torus)
    s = draw(st.integers(0, mesh.n - 1))
    t = draw(st.integers(0, mesh.n - 1))
    if s == t:
        t = (t + 1) % mesh.n
    return mesh, s, t


@settings(max_examples=120, deadline=None)
@given(pow2_mesh_and_pair(), st.integers(0, 2**31))
def test_selected_paths_always_valid(case, seed):
    mesh, s, t = case
    router = HierarchicalRouter()
    p = router.select_path(mesh, s, t, np.random.default_rng(seed))
    assert is_valid_path(mesh, p, s, t)


@settings(max_examples=120, deadline=None)
@given(pow2_mesh_and_pair(), st.integers(0, 2**31))
def test_stretch_theorem_universal(case, seed):
    """Theorem 3.4 / 4.2 as a property: every path of every packet on every
    power-of-two mesh respects the dimension-appropriate stretch ceiling."""
    mesh, s, t = case
    router = HierarchicalRouter()
    p = router.select_path(mesh, s, t, np.random.default_rng(seed))
    bound = stretch_bound_2d() if mesh.d <= 2 else stretch_bound_general(mesh.d)
    assert path_length(p) <= bound * mesh.distance(s, t)


@settings(max_examples=100, deadline=None)
@given(pow2_mesh_and_pair(max_d=2), st.integers(0, 2**31))
def test_bridge_height_lemma_universal(case, seed):
    """Lemma 3.3 as a property over 1-D/2-D meshes and tori."""
    mesh, s, t = case
    dec = Decomposition(mesh)
    h, bridge = common_ancestor_2d(dec, s, t)
    dist = int(mesh.distance(s, t))
    assert h <= max(bridge_height_bound_2d(dist), 2)
    assert bridge.box.contains_submesh(dec.type1_ancestor(s, h - 1))
    assert bridge.box.contains_submesh(dec.type1_ancestor(t, h - 1))


@settings(max_examples=60, deadline=None)
@given(pow2_mesh_and_pair(), st.integers(0, 2**31))
def test_recycled_bits_paths_valid_universal(case, seed):
    mesh, s, t = case
    router = HierarchicalRouter(bit_mode="recycled")
    p = router.select_path(mesh, s, t, np.random.default_rng(seed))
    assert is_valid_path(mesh, p, s, t)
    assert router.bits_log[-1] > 0


@settings(max_examples=60, deadline=None)
@given(pow2_mesh_and_pair(torus=False), st.integers(0, 2**31))
def test_sequence_structure_universal(case, seed):
    """The bitonic sequence is nested up to the bridge and down after it."""
    mesh, s, t = case
    router = HierarchicalRouter()
    seq, peak = router.submesh_sequence(mesh, s, t)
    assert seq[0].contains_node(s) and seq[0].is_single_node
    assert seq[-1].contains_node(t) and seq[-1].is_single_node
    for i in range(peak):
        assert seq[i + 1].contains_submesh(seq[i])
    for i in range(peak, len(seq) - 1):
        assert seq[i].contains_submesh(seq[i + 1])


@settings(max_examples=40, deadline=None)
@given(
    st.integers(1, 2),
    st.integers(2, 3),
    st.integers(0, 2**31),
    st.integers(4, 24),
)
def test_congestion_dominates_boundary_bound(d, k, seed, packets):
    """C >= B for the hierarchical router on random problems (Section 2)."""
    from repro.metrics.bounds import boundary_congestion
    from repro.workloads.generators import random_pairs

    mesh = Mesh(((1 << k),) * d)
    prob = random_pairs(mesh, packets, seed=seed % 1000)
    res = HierarchicalRouter().route(prob, seed=seed % 997)
    b = boundary_congestion(mesh, prob.sources, prob.dests)
    assert res.congestion >= b - 1e-9
