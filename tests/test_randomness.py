"""Tests for bit-metered randomness and the recycled-bit scheme (Section 5.3)."""

import numpy as np
import pytest

from repro.core.randomness import BitCounter, RecycledBits, bits_for_range
from repro.mesh.mesh import Mesh
from repro.mesh.submesh import Submesh


class TestBitsForRange:
    def test_values(self):
        assert bits_for_range(1) == 0
        assert bits_for_range(2) == 1
        assert bits_for_range(3) == 2
        assert bits_for_range(4) == 2
        assert bits_for_range(5) == 3
        assert bits_for_range(1024) == 10

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            bits_for_range(0)


class TestBitCounter:
    def test_counts_bits(self):
        bc = BitCounter(0)
        bc.bits(5)
        bc.bits(3)
        assert bc.bits_used == 8

    def test_zero_bits_free(self):
        bc = BitCounter(0)
        assert bc.bits(0) == 0
        assert bc.bits_used == 0

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            BitCounter(0).bits(-1)

    def test_bits_in_range(self):
        bc = BitCounter(1)
        for n in (1, 7, 31, 40, 64):
            x = bc.bits(n)
            assert 0 <= x < (1 << n)

    def test_wide_draw(self):
        bc = BitCounter(2)
        x = bc.bits(100)
        assert 0 <= x < (1 << 100)
        assert bc.bits_used == 100

    def test_integer_below_range(self):
        bc = BitCounter(3)
        for bound in (1, 2, 3, 7, 10, 100):
            for _ in range(20):
                assert 0 <= bc.integer_below(bound) < bound

    def test_integer_below_deterministic_for_one(self):
        bc = BitCounter(4)
        assert bc.integer_below(1) == 0
        assert bc.bits_used == 0

    def test_integer_below_power_of_two_exact_cost(self):
        bc = BitCounter(5)
        bc.integer_below(8)
        assert bc.bits_used == 3

    def test_integer_below_rejects_zero(self):
        with pytest.raises(ValueError):
            BitCounter(0).integer_below(0)

    def test_integer_below_roughly_uniform(self):
        bc = BitCounter(6)
        counts = np.bincount([bc.integer_below(4) for _ in range(4000)], minlength=4)
        assert counts.min() > 800  # expectation 1000 each

    def test_permutation_valid(self):
        bc = BitCounter(7)
        for d in (1, 2, 3, 5):
            perm = bc.permutation(d)
            assert sorted(perm) == list(range(d))

    def test_permutation_costs_bits(self):
        bc = BitCounter(8)
        bc.permutation(4)
        assert bc.bits_used >= 4  # log2(4!) ~ 4.58 entropy, rejection >= that

    def test_permutation_covers_all_orderings(self):
        bc = BitCounter(9)
        seen = {bc.permutation(3) for _ in range(500)}
        assert len(seen) == 6

    def test_uniform_node_in_box(self):
        mesh = Mesh((8, 8))
        box = Submesh(mesh, (2, 3), (5, 6))
        bc = BitCounter(10)
        for _ in range(100):
            assert box.contains_node(bc.uniform_node(box))

    def test_uniform_node_covers_box(self):
        mesh = Mesh((4, 4))
        box = Submesh(mesh, (0, 0), (1, 1))
        bc = BitCounter(11)
        seen = {bc.uniform_node(box) for _ in range(200)}
        assert seen == set(box.nodes().tolist())

    def test_reset(self):
        bc = BitCounter(12)
        bc.bits(10)
        bc.reset()
        assert bc.bits_used == 0

    def test_deterministic_given_seed(self):
        a = BitCounter(np.random.default_rng(42))
        b = BitCounter(np.random.default_rng(42))
        assert [a.bits(9) for _ in range(10)] == [b.bits(9) for _ in range(10)]


class TestRecycledBits:
    @pytest.fixture
    def mesh(self):
        return Mesh((16, 16))

    def test_master_node_in_largest(self, mesh):
        largest = Submesh(mesh, (4, 4), (11, 11))
        rb = RecycledBits(BitCounter(0), largest)
        assert largest.contains_node(rb.master_node(0))
        assert largest.contains_node(rb.master_node(1))

    def test_bit_budget_is_two_masters(self, mesh):
        largest = Submesh(mesh, (0, 0), (7, 7))  # 8x8 -> 3 bits/dim
        bc = BitCounter(0)
        RecycledBits(bc, largest)
        assert bc.bits_used == 2 * 2 * 3

    def test_derived_nodes_inside_their_boxes(self, mesh):
        largest = Submesh(mesh, (0, 0), (7, 7))
        rb = RecycledBits(BitCounter(1), largest)
        small = Submesh(mesh, (2, 4), (3, 5))  # 2x2 power-of-two box
        for step in range(6):
            assert small.contains_node(rb.node_for(step, small))

    def test_derivation_consumes_no_new_bits(self, mesh):
        largest = Submesh(mesh, (0, 0), (7, 7))
        bc = BitCounter(2)
        rb = RecycledBits(bc, largest)
        before = bc.bits_used
        rb.node_for(1, Submesh(mesh, (0, 0), (3, 3)))
        rb.node_for(2, Submesh(mesh, (4, 4), (7, 7)))
        assert bc.bits_used == before

    def test_largest_box_returns_master(self, mesh):
        largest = Submesh(mesh, (0, 0), (7, 7))
        rb = RecycledBits(BitCounter(3), largest)
        assert rb.node_for(0, largest) == rb.master_node(0)
        assert rb.node_for(1, largest) == rb.master_node(1)

    def test_alternation_by_parity(self, mesh):
        largest = Submesh(mesh, (0, 0), (7, 7))
        rb = RecycledBits(BitCounter(4), largest)
        box = Submesh(mesh, (0, 0), (3, 3))
        assert rb.node_for(0, box) == rb.node_for(2, box)
        assert rb.node_for(1, box) == rb.node_for(3, box)

    def test_non_power_of_two_derived_rejected(self, mesh):
        largest = Submesh(mesh, (0, 0), (7, 7))
        rb = RecycledBits(BitCounter(5), largest)
        with pytest.raises(ValueError):
            rb.node_for(0, Submesh(mesh, (0, 0), (2, 2)))  # side 3

    def test_wider_than_master_rejected(self, mesh):
        largest = Submesh(mesh, (0, 0), (3, 3))
        rb = RecycledBits(BitCounter(6), largest)
        with pytest.raises(ValueError):
            rb.node_for(0, Submesh(mesh, (0, 0), (7, 7)))

    def test_derived_nodes_uniform(self, mesh):
        """Low-bit derivation keeps per-box uniformity."""
        largest = Submesh(mesh, (0, 0), (7, 7))
        box = Submesh(mesh, (0, 0), (1, 1))
        counts = np.zeros(mesh.n, dtype=int)
        rng = np.random.default_rng(123)
        for _ in range(2000):
            rb = RecycledBits(BitCounter(rng), largest)
            counts[rb.node_for(0, box)] += 1
        hits = counts[box.nodes()]
        assert hits.sum() == 2000
        assert hits.min() > 380  # expectation 500 each
