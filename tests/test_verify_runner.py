"""The differential runner, shrinker, and replay corpus.

Tier-1 runs a 40-case slice of the smoke matrix end to end (zero
mismatches expected — this is the conformance gate in miniature); the
full acceptance matrix runs under the ``deep`` marker in the nightly job.
The shrinker is exercised against a synthetic failure predicate so its
delta-debugging is tested without needing a real product bug.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro.verify.runner as runner_mod
from repro.obs.profiler import Profiler
from repro.verify import (
    Case,
    CaseOutcome,
    check_corpus,
    generate_cases,
    load_corpus_case,
    run_case,
    run_suite,
    save_corpus_case,
    shrink_case,
    supported,
)
from repro.verify.cases import GRID_MESHES, ROUTERS

CORPUS_DIR = Path(__file__).parent / "corpus"


# ---------------------------------------------------------------------------
# Case generation: the acceptance matrix really is covered
# ---------------------------------------------------------------------------

def test_generate_cases_is_deterministic():
    a = generate_cases(60, seed=3)
    b = generate_cases(60, seed=3)
    assert [c.case_id for c in a] == [c.case_id for c in b]
    assert len(a) == 60


def test_grid_core_covers_the_acceptance_matrix():
    cases = generate_cases(220, seed=0)
    assert {c.router for c in cases} == set(ROUTERS)
    mesh_keys = {(c.sides, c.torus) for c in cases}
    for sides, torus, _label in GRID_MESHES:
        assert (tuple(sides), torus) in mesh_keys
    assert {c.workers for c in cases} >= {1, 4}
    assert {c.fault_mode for c in cases} >= {"none", "static"}


def test_case_round_trips_through_json():
    case = generate_cases(30, seed=1)[-1]
    again = Case.from_dict(json.loads(json.dumps(case.to_dict())))
    assert again == case
    assert again.case_id == case.case_id


# ---------------------------------------------------------------------------
# The runner on real cases
# ---------------------------------------------------------------------------

def test_smoke_slice_passes_clean():
    profiler = Profiler()
    cases = generate_cases(40, seed=0)
    report = run_suite(cases, mode="smoke", profiler=profiler, shrink=False)
    assert report.ok, report.to_dict()["failing"]
    assert report.cases == 40
    assert report.mismatches == 0
    assert report.violations == 0
    assert report.certificate_failures == 0
    assert report.invariants_checked > 0
    assert report.counters["verify.cases"] == 40
    assert "verify.invariants_checked" in report.counters


def test_run_case_online_kind():
    case = Case(
        sides=(6, 6),
        torus=False,
        router="dim-order",
        workload="random-pairs",
        seed=5,
        kind="online",
        rate=0.2,
        steps=20,
    )
    outcome = run_case(case)
    assert outcome.ok, outcome.to_dict()
    assert outcome.invariants_checked == 1


def test_run_case_raises_on_unbuildable_case():
    # infrastructure errors must surface, never be swallowed as "ok"
    case = Case(
        sides=(6, 5),
        torus=False,
        router="hierarchical",  # needs equal power-of-two sides
        workload="random-pairs",
        seed=0,
    )
    assert not supported(case)
    with pytest.raises(ValueError):
        run_case(case)


# ---------------------------------------------------------------------------
# Shrinking against a synthetic failure predicate
# ---------------------------------------------------------------------------

def _fails_when(predicate):
    def fake_run_case(case, profiler=None, *, real_pool=False):
        outcome = CaseOutcome(case)
        if predicate(case):
            outcome.mismatches.append("synthetic failure")
        return outcome

    return fake_run_case


def test_shrink_minimises_every_knob(monkeypatch):
    monkeypatch.setattr(
        runner_mod, "run_case", _fails_when(lambda c: c.packets >= 2)
    )
    big = Case(
        sides=(8, 8),
        torus=False,
        router="dim-order",
        workload="transpose",
        seed=0,
        workers=4,
        packets=32,
        fault_mode="static",
        fault_p=0.1,
        fault_seed=1,
    )
    small = shrink_case(big)
    assert small is not None and not small.ok
    c = small.case
    assert c.workers == 1
    assert c.fault_mode == "none"
    assert c.workload == "random-pairs"
    assert c.packets == 2  # packets=1 no longer fails, so 2 is minimal
    assert c.sides == (2, 2)  # walked the whole mesh ladder


def test_shrink_returns_none_for_unreproducible_case(monkeypatch):
    monkeypatch.setattr(runner_mod, "run_case", _fails_when(lambda c: False))
    case = Case(
        sides=(4, 4), torus=False, router="dim-order", workload="random-pairs", seed=0
    )
    assert shrink_case(case) is None


def test_suite_shrinks_and_records_failures(monkeypatch, tmp_path):
    # everything "fails": the suite must shrink and persist each case
    monkeypatch.setattr(runner_mod, "run_case", _fails_when(lambda c: True))
    cases = [
        Case(
            sides=(8, 8),
            torus=False,
            router="dim-order",
            workload="transpose",
            seed=0,
            workers=4,
        )
    ]
    report = run_suite(cases, corpus_dir=tmp_path)
    assert not report.ok and report.failures == 1
    files = list(tmp_path.glob("*.json"))
    assert len(files) == 1
    data = json.loads(files[0].read_text())
    assert data["status"] == "open"
    recorded = Case.from_dict(data["case"])
    assert recorded.workers == 1  # the *shrunk* case is what gets recorded
    assert files[0].stem == recorded.case_id


# ---------------------------------------------------------------------------
# Corpus persistence and the CI gate
# ---------------------------------------------------------------------------

def test_corpus_round_trip_and_gate(tmp_path):
    case = Case(
        sides=(4, 4), torus=False, router="dim-order", workload="random-pairs", seed=9
    )
    outcome = CaseOutcome(case, mismatches=["boom"])
    path = save_corpus_case(tmp_path, outcome)
    assert path.name == f"{case.case_id}.json"
    assert load_corpus_case(path) == case

    total, open_cases = check_corpus(tmp_path)
    assert total == 1 and open_cases == [path.name]

    data = json.loads(path.read_text())
    data["status"] = "resolved"
    path.write_text(json.dumps(data))
    assert check_corpus(tmp_path) == (1, [])


def test_load_corpus_case_accepts_bare_case_json(tmp_path):
    case = Case(
        sides=(4, 4), torus=False, router="valiant", workload="random-pairs", seed=2
    )
    path = tmp_path / "bare.json"
    path.write_text(json.dumps(case.to_dict()))
    assert load_corpus_case(path) == case


# -- the committed corpus ---------------------------------------------------

def _committed_cases():
    return sorted(CORPUS_DIR.glob("*.json"))


def test_committed_corpus_schema():
    files = _committed_cases()
    assert files, "the corpus must never be emptied (see corpus/README.md)"
    for path in files:
        data = json.loads(path.read_text())
        assert set(data) >= {"case", "status", "found", "note"}, path.name
        assert data["status"] in ("open", "resolved"), path.name
        case = Case.from_dict(data["case"])
        assert path.stem == case.case_id, f"{path.name} is misnamed"


def test_committed_corpus_has_no_open_cases():
    _total, open_cases = check_corpus(CORPUS_DIR)
    assert open_cases == [], (
        f"unresolved corpus cases {open_cases}: fix the bug, then flip "
        "status to 'resolved' — never delete the file"
    )


@pytest.mark.parametrize(
    "path", _committed_cases(), ids=lambda p: p.stem
)
def test_committed_corpus_replays_clean(path):
    # every resolved corpus case is a standing regression test
    case = load_corpus_case(path)
    outcome = run_case(case)
    assert outcome.ok, outcome.to_dict()


# ---------------------------------------------------------------------------
# The full acceptance matrix (nightly)
# ---------------------------------------------------------------------------

@pytest.mark.deep
def test_full_smoke_matrix_passes():
    profiler = Profiler()
    cases = generate_cases(220, seed=0)
    report = run_suite(cases, mode="smoke", profiler=profiler, shrink=False)
    assert report.cases >= 200
    assert report.ok, report.to_dict()["failing"]


@pytest.mark.deep
def test_real_pool_slice_matches_serial():
    # a handful of workers=4 cases on genuine fork pools
    cases = [c for c in generate_cases(220, seed=0) if c.workers != 1][:6]
    report = run_suite(cases, mode="deep", real_pool=True, shrink=False)
    assert report.ok, report.to_dict()["failing"]
