"""Unit tests for the mesh decomposition (Sections 3.1 and 4.1)."""

import numpy as np
import pytest

from repro.core.decomposition import Decomposition, RegularSubmesh, num_shift_slots
from repro.mesh.mesh import Mesh
from repro.mesh.submesh import Submesh


@pytest.fixture
def dec8():
    """paper2d decomposition of the 8x8 mesh of Figure 1."""
    return Decomposition(Mesh((8, 8)))


class TestBasics:
    def test_requires_pow2_cube(self):
        with pytest.raises(ValueError):
            Decomposition(Mesh((8, 4)))
        with pytest.raises(ValueError):
            Decomposition(Mesh((6, 6)))

    def test_auto_scheme(self):
        assert Decomposition(Mesh((8, 8))).scheme == "paper2d"
        assert Decomposition(Mesh((8, 8, 8))).scheme == "multishift"

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            Decomposition(Mesh((8, 8)), scheme="bogus")

    def test_levels_and_sides(self, dec8):
        assert dec8.k == 3
        assert [dec8.side(l) for l in range(4)] == [8, 4, 2, 1]
        assert [dec8.height(l) for l in range(4)] == [3, 2, 1, 0]
        assert dec8.level_of_height(2) == 1

    def test_level_bounds_checked(self, dec8):
        with pytest.raises(ValueError):
            dec8.side(4)
        with pytest.raises(ValueError):
            dec8.side(-1)

    def test_num_shift_slots(self):
        assert num_shift_slots(1) == 2
        assert num_shift_slots(2) == 4
        assert num_shift_slots(3) == 4
        assert num_shift_slots(4) == 8
        assert num_shift_slots(7) == 8
        with pytest.raises(ValueError):
            num_shift_slots(0)


class TestShifts:
    def test_paper2d_shifts(self, dec8):
        assert dec8.shifts(0) == [0]
        assert dec8.shifts(1) == [0, 2]  # m_1 = 4
        assert dec8.shifts(2) == [0, 1]  # m_2 = 2
        assert dec8.shifts(3) == [0]  # single nodes: no shifted grid

    def test_multishift_shift_counts(self):
        dec = Decomposition(Mesh((16, 16, 16)), scheme="multishift")
        # Level 1: m_l = 8, slots = 4 (d=3), lambda = 2 -> shifts 0,2,4,6.
        assert dec.shifts(1) == [0, 2, 4, 6]
        assert dec.lam(1) == 2
        # The paper: at least d+1 types when m_l >= d+1, at most 2(d+1).
        for level in range(1, dec.k + 1):
            assert dec.num_types(level) <= 2 * (dec.d + 1)
            if dec.side(level) >= dec.d + 1:
                assert dec.num_types(level) >= dec.d + 1

    def test_multishift_small_cells(self):
        dec = Decomposition(Mesh((8, 8, 8)), scheme="multishift")
        # At the deepest level, m_l = 1: only the unshifted type remains.
        assert dec.shifts(dec.k) == [0]
        # m_l = 2 -> lambda = 1 -> shifts {0, 1}.
        assert dec.shifts(dec.k - 1) == [0, 1]


class TestType1:
    def test_counts(self, dec8):
        for level in range(dec8.k + 1):
            assert len(dec8.type1_at_level(level)) == 4**level

    def test_cells_and_boxes(self, dec8):
        mesh = dec8.mesh
        node = mesh.node(5, 2)
        assert dec8.type1_cell(node, 1) == (1, 0)
        box = dec8.type1_box(1, (1, 0))
        assert box == Submesh(mesh, (4, 0), (7, 3))
        assert box.contains_node(node)

    def test_cell_out_of_range(self, dec8):
        with pytest.raises(ValueError):
            dec8.type1_box(1, (2, 0))

    def test_ancestor_chain_nested(self, dec8):
        node = dec8.mesh.node(6, 3)
        prev = dec8.type1_ancestor(node, 0)
        assert prev.is_single_node
        for h in range(1, dec8.k + 1):
            cur = dec8.type1_ancestor(node, h)
            assert cur.contains_submesh(prev)
            assert cur.sides == (1 << h, 1 << h)
            prev = cur
        assert prev == Submesh.whole(dec8.mesh)

    def test_level_k_are_leaves(self, dec8):
        leaves = dec8.type1_at_level(dec8.k)
        assert len(leaves) == dec8.mesh.n
        assert all(r.box.is_single_node for r in leaves)

    def test_partition_property(self, dec8):
        """Lemma 3.1(1): same-level type-1 submeshes partition the mesh."""
        for level in range(dec8.k + 1):
            sizes = sum(r.box.size for r in dec8.type1_at_level(level))
            assert sizes == dec8.mesh.n


class TestShifted2D:
    def test_level1_matches_figure1(self, dec8):
        """Figure 1, 'Level 1, type 2': one internal 4x4 plus 4 edge pieces."""
        regs = dec8.shifted_at_level(1, 2)
        assert len(regs) == 5
        boxes = {r.box for r in regs}
        assert Submesh(dec8.mesh, (2, 2), (5, 5)) in boxes  # internal
        assert Submesh(dec8.mesh, (0, 2), (1, 5)) in boxes  # top edge piece
        assert Submesh(dec8.mesh, (6, 2), (7, 5)) in boxes
        assert Submesh(dec8.mesh, (2, 0), (5, 1)) in boxes
        assert Submesh(dec8.mesh, (2, 6), (5, 7)) in boxes

    def test_corners_discarded(self, dec8):
        """The 2x2 corner pieces coincide with next-level type-1 submeshes."""
        assert dec8.shifted_box(1, 2, (-1, -1)) is None
        assert dec8.shifted_box(1, 2, (1, 1)) is None
        assert dec8.shifted_box(1, 2, (-1, 1)) is None

    def test_edge_piece_clipping(self, dec8):
        box = dec8.shifted_box(1, 2, (-1, 0))
        assert box == Submesh(dec8.mesh, (0, 2), (1, 5))
        reg = RegularSubmesh(box, 1, 2, (-1, 0))
        assert reg.truncated

    def test_internal_not_truncated(self, dec8):
        box = dec8.shifted_box(1, 2, (0, 0))
        reg = RegularSubmesh(box, 1, 2, (0, 0))
        assert not reg.truncated

    def test_min_side_half_cell(self, dec8):
        """All kept type-2 submeshes have every side >= m_l / 2."""
        for level in range(1, dec8.k + 1):
            m_l = dec8.side(level)
            for j in range(2, dec8.num_types(level) + 1):
                for reg in dec8.shifted_at_level(level, j):
                    assert min(reg.box.sides) >= m_l // 2

    def test_same_type_disjoint(self, dec8):
        """Lemma 3.1(1) for type-2."""
        for level in range(1, dec8.k + 1):
            if dec8.num_types(level) < 2:
                continue
            regs = dec8.shifted_at_level(level, 2)
            for i, a in enumerate(regs):
                for b in regs[i + 1 :]:
                    assert not a.box.overlaps(b.box)

    def test_invalid_type_index(self, dec8):
        with pytest.raises(ValueError):
            dec8.shifted_box(1, 3, (0, 0))
        with pytest.raises(ValueError):
            dec8.shifted_box(1, 1, (0, 0))

    def test_invalid_cell(self, dec8):
        with pytest.raises(ValueError):
            dec8.shifted_box(1, 2, (-2, 0))


class TestShiftedMultishift:
    @pytest.fixture
    def dec3d(self):
        return Decomposition(Mesh((8, 8, 8)), scheme="multishift")

    def test_all_types_disjoint_within_type(self, dec3d):
        for level in range(1, dec3d.k + 1):
            for j in range(2, dec3d.num_types(level) + 1):
                regs = dec3d.shifted_at_level(level, j)
                for i, a in enumerate(regs):
                    for b in regs[i + 1 :]:
                        assert not a.box.overlaps(b.box)

    def test_each_type_covers_mesh(self, dec3d):
        """Every shifted grid tiles the whole mesh (kept pieces cover it)."""
        for level in range(1, dec3d.k):
            for j in range(2, dec3d.num_types(level) + 1):
                covered = sum(
                    r.box.size for r in dec3d.shifted_at_level(level, j)
                )
                assert covered == dec3d.mesh.n

    def test_edge_in_O_d_submeshes_per_level(self, dec3d):
        """Each node lies in exactly one submesh per type per level."""
        node = dec3d.mesh.node(3, 5, 6)
        for level in range(1, dec3d.k + 1):
            for j in range(2, dec3d.num_types(level) + 1):
                hits = [
                    r
                    for r in dec3d.shifted_at_level(level, j)
                    if r.box.contains_node(node)
                ]
                assert len(hits) == 1


class TestContainingRegulars:
    def test_results_contain_box(self, dec8):
        box = Submesh(dec8.mesh, (3, 3), (4, 4))
        for level in range(dec8.k + 1):
            for reg in dec8.containing_regulars(box, level):
                assert reg.box.contains_submesh(box)

    def test_straddling_box_needs_type2(self, dec8):
        """A box straddling the central type-1 cut is caught by type-2."""
        box = Submesh(dec8.mesh, (3, 3), (4, 4))
        regs = dec8.containing_regulars(box, 1)
        assert regs, "the central type-2 submesh must contain the box"
        assert all(r.type_index == 2 for r in regs)

    def test_aligned_box_found_in_type1(self, dec8):
        box = Submesh(dec8.mesh, (0, 0), (3, 3))
        regs = dec8.containing_regulars(box, 1)
        assert any(r.type_index == 1 for r in regs)

    def test_matches_brute_force(self, dec8):
        rng = np.random.default_rng(3)
        for _ in range(30):
            a = rng.integers(0, 8, size=2)
            b = rng.integers(0, 8, size=2)
            lo, hi = np.minimum(a, b), np.maximum(a, b)
            box = Submesh(dec8.mesh, lo, hi)
            for level in range(dec8.k + 1):
                fast = {r.box for r in dec8.containing_regulars(box, level)}
                brute = {
                    r.box
                    for r in dec8.at_level(level)
                    if r.box.contains_submesh(box)
                }
                assert fast == brute

    def test_matches_brute_force_3d(self):
        dec = Decomposition(Mesh((8, 8, 8)), scheme="multishift")
        rng = np.random.default_rng(4)
        for _ in range(10):
            a = rng.integers(0, 8, size=3)
            b = rng.integers(0, 8, size=3)
            lo, hi = np.minimum(a, b), np.maximum(a, b)
            box = Submesh(dec.mesh, lo, hi)
            for level in range(dec.k + 1):
                fast = {r.box for r in dec.containing_regulars(box, level)}
                brute = {
                    r.box
                    for r in dec.at_level(level)
                    if r.box.contains_submesh(box)
                }
                assert fast == brute


class TestRendering:
    def test_render_level_type1(self, dec8):
        art = dec8.render_level_2d(1)
        lines = art.splitlines()
        assert len(lines) == 8 and all(len(l) == 8 for l in lines)
        assert "." not in art  # type-1 covers everything

    def test_render_level_type2_has_holes(self, dec8):
        art = dec8.render_level_2d(1, type_index=2)
        assert art.count(".") == 16  # four discarded 2x2 corners

    def test_render_requires_2d(self):
        dec = Decomposition(Mesh((8, 8, 8)))
        with pytest.raises(ValueError):
            dec.render_level_2d(1)

    def test_summary_mentions_levels(self, dec8):
        text = dec8.summary()
        assert "level" in text
        assert str(dec8.k) in text
