"""Executor lifecycle regressions: pool teardown, fallback, spawn, shm.

These pin the two per-call lifecycle bugs the service work exposed:

1. a failing sharded route used to leak its process pool (the try/finally
   covered only the map, not the merge/telemetry fold) — now an owned
   pool is torn down on *every* exit path;
2. ``make_executor`` used to degrade to the in-process executor silently
   — now it warns once per process and the sharding layer counts
   ``parallel.fallback_serial``.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro.cli import build_workload, parse_mesh
from repro.obs import Profiler
from repro.parallel import executor as executor_mod
from repro.parallel.api import route_sharded
from repro.parallel.executor import SerialExecutor, make_executor, resolve_context
from repro.routing.base import Router
from repro.routing.registry import make_router

FORK = "fork" in multiprocessing.get_all_start_methods()
SPAWN = "spawn" in multiprocessing.get_all_start_methods()


class ExplodingRouter(Router):
    """An oblivious router whose route() always fails (in the worker)."""

    name = "exploding"
    is_oblivious = True

    def select_path(self, mesh, s, t, rng):  # pragma: no cover - not reached
        raise AssertionError("select_path should not run")

    def route(self, problem, seed=None, **kwargs):
        raise RuntimeError("boom: injected worker failure")


def _problem(spec: str = "8x8", workload: str = "transpose"):
    mesh = parse_mesh(spec)
    return build_workload(workload, mesh, 0)


@pytest.fixture(autouse=True)
def _reset_fallback_warning():
    executor_mod._warned_fallback = False
    yield
    executor_mod._warned_fallback = False


@pytest.mark.skipif(not FORK, reason="needs fork pools")
class TestPoolTeardown:
    def test_failing_sharded_route_leaves_no_live_children(self):
        """The regression: a worker exception must tear the owned pool
        down, leaving no live child processes behind."""
        problem = _problem()
        before = set(p.pid for p in multiprocessing.active_children())
        with pytest.raises(RuntimeError, match="boom"):
            route_sharded(ExplodingRouter(), problem, 0, workers=2)
        leaked = [
            p
            for p in multiprocessing.active_children()
            if p.pid not in before and p.is_alive()
        ]
        assert not leaked, f"failing sharded route leaked children: {leaked}"

    def test_successful_sharded_route_leaves_no_live_children(self):
        problem = _problem()
        router = make_router("hierarchical")
        before = set(p.pid for p in multiprocessing.active_children())
        result = route_sharded(router, problem, 0, workers=2)
        assert result.problem.num_packets == problem.num_packets
        leaked = [
            p
            for p in multiprocessing.active_children()
            if p.pid not in before and p.is_alive()
        ]
        assert not leaked

    def test_injected_executor_is_not_shut_down(self):
        pool = make_executor(2, context="fork")
        try:
            problem = _problem()
            router = make_router("hierarchical")
            a = route_sharded(router, problem, 0, workers=2, executor=pool)
            b = route_sharded(router, problem, 0, workers=2, executor=pool)
            assert a.paths.nodes.tobytes() == b.paths.nodes.tobytes()
        finally:
            pool.shutdown()


class TestSerialFallback:
    def test_unavailable_context_warns_once_and_degrades(self, monkeypatch):
        monkeypatch.setattr(
            executor_mod.multiprocessing, "get_all_start_methods", lambda: []
        )
        with pytest.warns(RuntimeWarning, match="parallel.fallback_serial"):
            ex = make_executor(4, context="fork")
        assert isinstance(ex, SerialExecutor)
        # second request: same degradation, no second warning
        import warnings as _w

        with _w.catch_warnings():
            _w.simplefilter("error")
            assert isinstance(make_executor(4, context="fork"), SerialExecutor)

    def test_fallback_counts_and_stays_byte_identical(self, monkeypatch):
        monkeypatch.setattr(
            executor_mod.multiprocessing, "get_all_start_methods", lambda: []
        )
        problem = _problem()
        router = make_router("hierarchical")
        serial = router.route(problem, 3)
        profiler = Profiler()
        router.profiler = profiler
        with pytest.warns(RuntimeWarning):
            sharded = route_sharded(router, problem, 3, workers=4)
        assert sharded.paths.nodes.tobytes() == serial.paths.nodes.tobytes()
        assert profiler.snapshot()["counters"]["parallel.fallback_serial"] == 1

    def test_injected_serial_executor_counts_fallback(self):
        problem = _problem()
        router = make_router("hierarchical")
        profiler = Profiler()
        router.profiler = profiler
        route_sharded(
            router, problem, 0, workers=4, executor=SerialExecutor()
        )
        assert profiler.snapshot()["counters"]["parallel.fallback_serial"] == 1

    def test_explicit_serial_context_does_not_warn(self):
        import warnings as _w

        with _w.catch_warnings():
            _w.simplefilter("error")
            assert isinstance(
                make_executor(4, context="serial"), SerialExecutor
            )

    def test_resolve_context(self):
        assert resolve_context("serial") == "serial"
        assert resolve_context("auto") in ("fork", "spawn")
        with pytest.raises(ValueError):
            resolve_context("threads")


@pytest.mark.skipif(not SPAWN, reason="needs spawn pools")
class TestSpawnContext:
    def test_spawn_pool_byte_identical(self):
        """Spawn workers inherit nothing — the warm-up initializer must
        rebuild their state, and the bytes must still match serial."""
        problem = _problem()
        router = make_router("hierarchical")
        serial = router.route(problem, 5)
        spawned = route_sharded(
            router, problem, 5, workers=2, context="spawn"
        )
        assert spawned.paths.nodes.tobytes() == serial.paths.nodes.tobytes()
        assert spawned.paths.offsets.tobytes() == serial.paths.offsets.tobytes()


@pytest.mark.skipif(not FORK, reason="needs fork pools")
class TestShmTransport:
    def test_shm_transport_byte_identical_and_clean(self):
        from repro.core import shm as core_shm

        problem = _problem("16x16")
        router = make_router("hierarchical")
        serial = router.route(problem, 9)
        before = set(core_shm.active_segments())
        shm_result = route_sharded(
            router, problem, 9, workers=3, transport="shm"
        )
        assert shm_result.paths.nodes.tobytes() == serial.paths.nodes.tobytes()
        assert set(core_shm.active_segments()) - before == set()

    def test_pickle_transport_still_available(self):
        problem = _problem()
        router = make_router("hierarchical")
        serial = router.route(problem, 9)
        pickled = route_sharded(
            router, problem, 9, workers=2, transport="pickle"
        )
        assert pickled.paths.nodes.tobytes() == serial.paths.nodes.tobytes()

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="transport"):
            route_sharded(
                make_router("hierarchical"), _problem(), 0,
                workers=2, transport="carrier-pigeon",
            )
