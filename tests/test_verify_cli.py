"""The `repro verify` subcommand: tiers, JSON output, replay, corpus gate."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.verify import Case, CaseOutcome, save_corpus_case

REGRESSION_CASE = str(Path(__file__).parent / "corpus" / "6c9e917db556.json")


def test_verify_smoke_small_slice(capsys):
    assert main(["verify", "--smoke", "--cases", "12"]) == 0
    out = capsys.readouterr().out
    assert "verify [smoke]: 12 cases, 0 failures" in out


def test_verify_json_report(capsys):
    assert main(["verify", "--cases", "8", "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["ok"] is True
    assert report["cases"] == 8
    assert report["mismatches"] == 0
    assert report["violations"] == 0
    assert report["counters"]["verify.cases"] == 8


def test_verify_replay_committed_case(capsys):
    assert main(["verify", "--replay", REGRESSION_CASE]) == 0
    assert capsys.readouterr().out.startswith("OK ")


def test_verify_replay_json(capsys):
    rc = main(["verify", "--replay", REGRESSION_CASE, "--json"])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["case_id"] == "6c9e917db556"


def test_verify_check_corpus_clean(capsys):
    corpus = str(Path(REGRESSION_CASE).parent)
    assert main(["verify", "--check-corpus", "--corpus", corpus]) == 0
    assert "all resolved" in capsys.readouterr().out


def test_verify_check_corpus_flags_open_cases(tmp_path, capsys):
    case = Case(
        sides=(4, 4), torus=False, router="dim-order", workload="random-pairs", seed=0
    )
    save_corpus_case(tmp_path, CaseOutcome(case, mismatches=["boom"]))
    rc = main(["verify", "--check-corpus", "--corpus", str(tmp_path)])
    assert rc == 1
    assert "unresolved" in capsys.readouterr().out


def test_verify_replay_open_failure_exits_nonzero(tmp_path, capsys, monkeypatch):
    # replay a case that genuinely fails: fake the runner to keep it cheap
    import repro.verify.runner as runner_mod

    case = Case(
        sides=(4, 4), torus=False, router="dim-order", workload="random-pairs", seed=1
    )
    path = save_corpus_case(tmp_path, CaseOutcome(case, mismatches=["boom"]))

    def fake_run_case(c, profiler=None, *, real_pool=False):
        return CaseOutcome(c, mismatches=["replayed failure"])

    monkeypatch.setattr(runner_mod, "run_case", fake_run_case)
    assert main(["verify", "--replay", str(path)]) == 1
    out = capsys.readouterr().out
    assert out.startswith("FAIL ")
    assert "replayed failure" in out


def test_verify_smoke_and_deep_are_exclusive(capsys):
    with pytest.raises(SystemExit):
        main(["verify", "--smoke", "--deep"])
