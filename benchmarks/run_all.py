#!/usr/bin/env python
"""Regenerate every experiment table (the data behind EXPERIMENTS.md).

Runs the ``run_experiment()`` of every bench module at its default (full)
parameters and prints the tables.  Pass ``--quick`` for the reduced
parameters the pytest-benchmark assertions use.

Usage:  python benchmarks/run_all.py [--quick]
"""

from __future__ import annotations

import sys

from common import print_experiment

import bench_f1_decomposition_2d as f1
import bench_f2_decomposition_dd as f2
import bench_t1_stretch_2d as t1
import bench_t2_bridge_height as t2
import bench_t3_congestion_2d as t3
import bench_t4_stretch_dd as t4
import bench_t5_congestion_dd as t5
import bench_t6_randomization as t6
import bench_t7_random_bits as t7
import bench_t8_routing_time as t8
import bench_a1_bridge_ablation as a1
import bench_a2_dim_order_ablation as a2
import bench_a3_scheme_ablation as a3
import bench_x1_online_routing as x1
import bench_x2_expected_congestion as x2
import bench_x3_torus as x3
import bench_x4_scaling as x4
import bench_x5_rectangular as x5
import bench_x6_adversary_search as x6


def main(quick: bool = False) -> None:
    experiments = [
        ("F1 / Figure 1: 2-D decomposition inventory (8x8)", f1.run_experiment, {}),
        ("F2 / Figure 2: multishift shift table (16^3)", f2.run_experiment, {}),
        (
            "T1 / Theorem 3.4: 2-D stretch <= 64",
            t1.run_experiment,
            {"sizes": (8, 16, 32), "pairs_per_mesh": 200} if quick else {},
        ),
        (
            "T2 / Lemma 3.3: bridge height vs log2(dist)+2",
            t2.run_experiment,
            {"m": 32, "samples": 1000} if quick else {},
        ),
        (
            "T3 / Theorem 3.9: 2-D congestion vs C* lower bound",
            t3.run_experiment,
            {"m": 16, "seeds": (0,)} if quick else {},
        ),
        ("T4 / Theorem 4.2: stretch O(d^2)", t4.run_experiment, {}),
        ("T5 / Theorem 4.3: d-dim congestion", t5.run_experiment, {}),
        (
            "T6 / Section 5.1: forced congestion of deterministic routing",
            t6.run_experiment,
            {"m": 32, "ls": (2, 8, 16)} if quick else {},
        ),
        (
            "T6b / Lemma 5.1: kappa-choice hot-edge sweep",
            t6.run_kappa_experiment,
            {"m": 16, "l": 8, "ks": (1, 4, 16), "trials": 4} if quick else {},
        ),
        (
            "T7 / Lemma 5.4: random bits per packet",
            t7.run_experiment,
            {"m": 32, "ls": (2, 8, 16)} if quick else {},
        ),
        ("T8 / routing time: makespan vs C+D", t8.run_experiment, {}),
        ("A1 / ablation: bridges on vs off", a1.run_experiment, {}),
        ("A2 / ablation: dimension-order randomization", a2.run_experiment, {}),
        ("A3 / ablation: multishift vs half-shift generalization", a3.run_experiment, {}),
        (
            "X1 / extension: online routing latency vs load",
            x1.run_experiment,
            {"rates": (0.01, 0.1), "steps": 150} if quick else {},
        ),
        (
            "X2 / extension: exact E[C(e)] vs Lemma 3.8",
            x2.run_experiment,
            {"mc_trials": 100} if quick else {},
        ),
        ("X3 / extension: torus vs mesh", x3.run_experiment, {}),
        (
            "X4 / extension: log-n scaling",
            x4.run_experiment,
            {"sizes": (8, 16, 32), "seeds": (0,)} if quick else {},
        ),
        ("X5 / extension: rectangular meshes", x5.run_experiment, {}),
        (
            "X6 / extension: adversarial workload search",
            x6.run_experiment,
            {"budget": 120} if quick else {},
        ),
    ]
    for title, run, kwargs in experiments:
        print_experiment(title, run(**kwargs))


if __name__ == "__main__":
    main(quick="--quick" in sys.argv)
