#!/usr/bin/env python
"""Regenerate every experiment table (the data behind EXPERIMENTS.md).

Runs the ``run_experiment()`` of every bench module and prints the tables.
Three parameter tiers:

* default — the full parameters behind EXPERIMENTS.md;
* ``--quick`` — the reduced parameters the pytest-benchmark assertions use;
* ``--smoke`` — tiny meshes, one seed: exercises every experiment
  end-to-end in well under a minute (CI runs this on every push).

Usage:  python benchmarks/run_all.py [--quick | --smoke] [--json PATH]

``--json PATH`` additionally writes every experiment's rows as one JSON
document (``{"mode": ..., "experiments": {title: rows}}``) — CI uploads
the smoke-tier file as a build artifact so regressions can be diffed
without re-running anything.
"""

from __future__ import annotations

import json
import sys

from common import print_experiment

import bench_f1_decomposition_2d as f1
import bench_f2_decomposition_dd as f2
import bench_t1_stretch_2d as t1
import bench_t2_bridge_height as t2
import bench_t3_congestion_2d as t3
import bench_t4_stretch_dd as t4
import bench_t5_congestion_dd as t5
import bench_t6_randomization as t6
import bench_t7_random_bits as t7
import bench_t8_routing_time as t8
import bench_t9_engine_profile as t9
import bench_t10_fault_tolerance as t10
import bench_t11_parallel_scaling as t11
import bench_t14_randomness_frontier as t14
import bench_t15_service_latency as t15
import bench_t16_competitor_frontier as t16
import bench_t17_traffic_slo as t17
import bench_a1_bridge_ablation as a1
import bench_a2_dim_order_ablation as a2
import bench_a3_scheme_ablation as a3
import bench_x1_online_routing as x1
import bench_x2_expected_congestion as x2
import bench_x3_torus as x3
import bench_x4_scaling as x4
import bench_x5_rectangular as x5
import bench_x6_adversary_search as x6

# (title, runner, quick kwargs, smoke kwargs); default runs use {}.
EXPERIMENTS = [
    (
        "F1 / Figure 1: 2-D decomposition inventory (8x8)",
        f1.run_experiment,
        {},
        {},
    ),
    (
        "F2 / Figure 2: multishift shift table (16^3)",
        f2.run_experiment,
        {},
        {"d": 2, "m": 8},
    ),
    (
        "T1 / Theorem 3.4: 2-D stretch <= 64",
        t1.run_experiment,
        {"sizes": (8, 16, 32), "pairs_per_mesh": 200},
        {"sizes": (8,), "pairs_per_mesh": 50},
    ),
    (
        "T2 / Lemma 3.3: bridge height vs log2(dist)+2",
        t2.run_experiment,
        {"m": 32, "samples": 1000},
        {"m": 16, "samples": 100},
    ),
    (
        "T3 / Theorem 3.9: 2-D congestion vs C* lower bound",
        t3.run_experiment,
        {"m": 16, "seeds": (0,)},
        {"m": 8, "seeds": (0,)},
    ),
    (
        "T4 / Theorem 4.2: stretch O(d^2)",
        t4.run_experiment,
        {},
        {"configs": ((2, 8),)},
    ),
    (
        "T5 / Theorem 4.3: d-dim congestion",
        t5.run_experiment,
        {},
        {"configs": ((2, 8),)},
    ),
    (
        "T6 / Section 5.1: forced congestion of deterministic routing",
        t6.run_experiment,
        {"m": 32, "ls": (2, 8, 16)},
        {"m": 16, "ls": (2, 4)},
    ),
    (
        "T6b / Lemma 5.1: kappa-choice hot-edge sweep",
        t6.run_kappa_experiment,
        {"m": 16, "l": 8, "ks": (1, 4, 16), "trials": 4},
        {"m": 8, "l": 4, "ks": (1, 2), "trials": 2},
    ),
    (
        "T7 / Lemma 5.4: random bits per packet",
        t7.run_experiment,
        {"m": 32, "ls": (2, 8, 16)},
        {"m": 16, "ls": (2, 4)},
    ),
    (
        "T8 / routing time: makespan vs C+D",
        t8.run_experiment,
        {},
        {"m": 8},
    ),
    (
        "T9 / engineering: batched engine profile",
        t9.run_experiment,
        {"m": 16},
        {"m": 16},
    ),
    (
        "T9 / engineering: metrics stage, PathSet vs list baseline",
        t9.run_metrics_experiment,
        {"m": 32, "packets": 20_000},
        {"m": 16, "packets": 2_000},
    ),
    (
        "T10 / extension: fault tolerance",
        t10.run_experiment,
        {"ps": (0.0, 0.01), "steps": 80},
        {"m": 8, "ps": (0.0, 0.01), "steps": 40},
    ),
    (
        "T11 / engineering: parallel scaling, byte-identical shards",
        t11.run_experiment,
        {"m": 32, "packets": 50_000, "worker_counts": (1, 2)},
        {"m": 16, "packets": 2_000, "worker_counts": (1, 2)},
    ),
    (
        "T14 / Theorems 5.2+5.5: the bits/congestion frontier",
        t14.run_experiment,
        {"m": 16, "seeds": (0,), "budgets": (0, 16, 24, None)},
        {"m": 16, "seeds": (0,), "budgets": (0, 16, None)},
    ),
    (
        "T15 / engineering: warm routing service vs cold per-call engines",
        t15.run_experiment,
        {"requests": 8, "big_packets": 70_000, "big_m": 32},
        {"requests": 4, "big_packets": 20_000, "big_m": 16},
    ),
    (
        "T16 / competitors: congestion x stretch x bits frontier",
        t16.run_experiment,
        {"m": 16, "seeds": (0,)},
        {"m": 8, "seeds": (0,)},
    ),
    (
        "T17 / service: traffic, SLO telemetry, admission",
        t17.run_experiment,
        {"m": 8, "steps": 60},
        {"m": 8, "rates": (0.02, 0.05, 0.1, 0.2, 0.35), "steps": 30},
    ),
    (
        "A1 / ablation: bridges on vs off",
        a1.run_experiment,
        {},
        {"m": 16, "seeds": (0,)},
    ),
    (
        "A2 / ablation: dimension-order randomization",
        a2.run_experiment,
        {},
        {"seeds": (0,)},
    ),
    (
        "A3 / ablation: multishift vs half-shift generalization",
        a3.run_experiment,
        {},
        {"configs": ((3, 16),)},
    ),
    (
        "X1 / extension: online routing latency vs load",
        x1.run_experiment,
        {"rates": (0.01, 0.1), "steps": 150},
        {"m": 8, "rates": (0.05,), "steps": 50},
    ),
    (
        "X2 / extension: exact E[C(e)] vs Lemma 3.8",
        x2.run_experiment,
        {"mc_trials": 100},
        {"sizes": (4,), "mc_trials": 20},
    ),
    (
        "X3 / extension: torus vs mesh",
        x3.run_experiment,
        {},
        {"m": 8},
    ),
    (
        "X4 / extension: log-n scaling",
        x4.run_experiment,
        {"sizes": (8, 16, 32), "seeds": (0,)},
        {"sizes": (8,), "seeds": (0,)},
    ),
    (
        "X5 / extension: rectangular meshes",
        x5.run_experiment,
        {},
        {"configs": ((32, 8),), "packets": 50},
    ),
    (
        "X6 / extension: adversarial workload search",
        x6.run_experiment,
        {"budget": 120},
        {"m": 8, "budget": 20},
    ),
]


def main(mode: str = "full", json_path: str | None = None) -> None:
    results: dict[str, list] = {}
    for title, run, quick_kwargs, smoke_kwargs in EXPERIMENTS:
        kwargs = {"quick": quick_kwargs, "smoke": smoke_kwargs}.get(mode, {})
        rows = run(**kwargs)
        results[title] = [dict(r) for r in rows]
        print_experiment(title, rows)
    if json_path is not None:
        with open(json_path, "w", encoding="utf-8") as fh:
            json.dump({"mode": mode, "experiments": results}, fh, indent=2, default=str)
        print(f"results written to {json_path}")


if __name__ == "__main__":
    argv = sys.argv[1:]
    json_path = None
    if "--json" in argv:
        i = argv.index("--json")
        try:
            json_path = argv[i + 1]
        except IndexError:
            raise SystemExit("--json requires a path argument")
    if "--smoke" in argv:
        main("smoke", json_path)
    elif "--quick" in argv:
        main("quick", json_path)
    else:
        main("full", json_path)
