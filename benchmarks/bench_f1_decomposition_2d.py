"""Experiment F1 — Figure 1: the 2-D mesh decomposition of the 8x8 mesh.

Regenerates the submesh inventory behind Figure 1 (type-1 and type-2
submeshes per level) together with the structural properties of Lemma 3.1,
and benchmarks building the decomposition + access graph.

Paper claims checked:
* level ``l`` has ``2^{2l}`` type-1 submeshes of side ``2^{k-l}``;
* level 1 type-2 on the 8x8 mesh: 1 internal + 4 edge pieces (corners
  discarded), exactly as drawn in Figure 1;
* Lemma 3.1: disjointness, type-1 partition, type-1 containment (and the
  documented erratum for literal part (3)).
"""

from __future__ import annotations

from common import main_print, print_experiment

from repro.core.access_graph import AccessGraph
from repro.core.decomposition import Decomposition
from repro.mesh.mesh import Mesh


def run_experiment() -> list[dict]:
    dec = Decomposition(Mesh((8, 8)))
    graph = AccessGraph(dec)
    lemma = graph.check_lemma_3_1()
    rows = []
    for level in range(dec.k + 1):
        type1 = dec.type1_at_level(level)
        shifted = (
            dec.shifted_at_level(level, 2) if dec.num_types(level) > 1 else []
        )
        rows.append(
            {
                "level": level,
                "side": dec.side(level),
                "type1": len(type1),
                "type1_expected": 4**level,
                "type2": len(shifted),
                "type2_internal": sum(1 for r in shifted if not r.truncated),
                "type2_clipped": sum(1 for r in shifted if r.truncated),
                "graph_nodes": len(graph.levels[level]),
                "lemma31_ok": lemma["disjoint"]
                and lemma["partition"]
                and lemma["contained"],
            }
        )
    return rows


def test_figure1_inventory(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for row in rows:
        assert row["type1"] == row["type1_expected"]
        assert row["lemma31_ok"]
    # Figure 1, level 1, type 2: one internal 4x4 plus four edge pieces.
    level1 = rows[1]
    assert level1["type2"] == 5
    assert level1["type2_internal"] == 1
    assert level1["type2_clipped"] == 4


def test_access_graph_construction_16(benchmark):
    mesh = Mesh((16, 16))

    def build():
        return AccessGraph(Decomposition(mesh)).num_nodes()

    nodes = benchmark(build)
    assert nodes > mesh.n  # leaves plus the hierarchy above them


if __name__ == "__main__":
    main_print(run_experiment, "F1 / Figure 1: 2-D decomposition inventory (8x8)")
    dec = Decomposition(Mesh((8, 8)))
    for level in (1, 2):
        print(f"Level {level}, type 1:")
        print(dec.render_level_2d(level, 1))
        print(f"Level {level}, type 2:")
        print(dec.render_level_2d(level, 2))
        print()
