"""Experiment T8 — routing time tracks C + D (Section 1's motivation).

The paper optimises path selection because any schedule needs
``Omega(C + D)`` steps.  This experiment closes the loop: it schedules the
selected paths with the synchronous store-and-forward simulator and reports
``makespan / (C + D)`` per router and workload.

Expected shape: makespan lies in ``[max(C, D), ~C + D]`` for the greedy
policies, so routers minimising C + D (hierarchical) deliver fastest on
mixed traffic, while stretch-heavy routers (access tree, Valiant) pay their
inflated D on local traffic.
"""

from __future__ import annotations

from common import main_print

from repro.core.path_selection import HierarchicalRouter
from repro.mesh.mesh import Mesh
from repro.routing.baselines import AccessTreeRouter, RandomDimOrderRouter, ValiantRouter
from repro.simulation.scheduler import simulate


def run_experiment(m: int = 16, policy: str = "farthest-first") -> list[dict]:
    from repro.workloads.generators import nearest_neighbor
    from repro.workloads.permutations import random_permutation, transpose

    mesh = Mesh((m, m))
    routers = [
        HierarchicalRouter(),
        AccessTreeRouter(),
        RandomDimOrderRouter(),
        ValiantRouter(),
    ]
    workloads = [
        transpose(mesh),
        random_permutation(mesh, seed=3),
        nearest_neighbor(mesh, seed=3),
    ]
    rows = []
    for prob in workloads:
        for router in routers:
            result = router.route(prob, seed=4)
            sim = simulate(mesh, result, policy=policy, seed=5)
            rows.append(
                {
                    "workload": prob.name,
                    "router": router.name,
                    "C": sim.congestion,
                    "D": sim.dilation,
                    "C+D": sim.cd_bound,
                    "makespan": sim.makespan,
                    "makespan/(C+D)": sim.efficiency,
                }
            )
    return rows


def test_makespan_tracks_cd(benchmark):
    rows = benchmark.pedantic(run_experiment, args=(16,), rounds=1, iterations=1)
    for row in rows:
        assert max(row["C"], row["D"]) <= row["makespan"]
        assert row["makespan"] <= 2 * row["C+D"] + 8
    nn = {r["router"]: r for r in rows if r["workload"] == "nearest-neighbor"}
    # local traffic: constant-stretch routing delivers far faster
    assert nn["hierarchical"]["makespan"] * 2 < nn["valiant"]["makespan"]
    assert nn["hierarchical"]["makespan"] * 2 < nn["access-tree"]["makespan"]


def test_simulation_throughput(benchmark):
    from repro.workloads.permutations import random_permutation

    mesh = Mesh((16, 16))
    result = HierarchicalRouter().route(random_permutation(mesh, seed=0), seed=1)
    sim = benchmark(simulate, mesh, result)
    assert sim.makespan > 0


if __name__ == "__main__":
    main_print(run_experiment, "T8 / routing time: makespan vs C + D")
