"""Experiment T10 (extension) — fault tolerance of oblivious routing.

The paper's pitch for oblivious routing is that it is distributed and
online; real networks add a third demand: losing links must degrade the
system, not stop it.  This experiment injects faults from every
:class:`~repro.faults.model.FaultModel` regime and measures how delivery
holds up when path selection goes through the fault-aware wrapper
(resample on a dead edge, greedy detour as a last resort) and blocked
packets wait/reroute in the schedulers.

Expected shape:

* at 1% static link failures the hierarchical router keeps delivery
  ratio essentially at 1.0 with a mild latency tax (resampling skews
  paths away from the shortest ones);
* correlated block failures hurt more than the same number of
  independent failures (whole regions become detours);
* dynamic fail/repair shows blocked-step waiting instead of drops: with
  repairs, nothing is ever unreachable forever.
"""

from __future__ import annotations

from common import main_print

from repro.core.path_selection import HierarchicalRouter
from repro.faults import FaultModel
from repro.mesh.mesh import Mesh
from repro.simulation.online import simulate_online


def _row(label, param, stats):
    return {
        "faults": label,
        "param": param,
        "injected": stats.injected,
        "delivery_ratio": round(stats.delivery_ratio, 4),
        "mean_latency": round(stats.mean_latency, 2),
        "slowdown": round(stats.mean_slowdown, 2),
        "resamples": stats.resamples,
        "detours": stats.detours,
        "reroutes": stats.reroutes,
        "blocked": stats.blocked_steps,
        "dropped": stats.dropped,
    }


def run_experiment(
    m: int = 16,
    ps=(0.0, 0.01, 0.05),
    steps: int = 150,
    rate: float = 0.05,
    seed: int = 11,
) -> list[dict]:
    mesh = Mesh((m, m))
    router = HierarchicalRouter()
    rows = []
    for p in ps:
        stats = simulate_online(
            router, mesh, rate=rate, steps=steps, seed=seed,
            faults=FaultModel.static(mesh, p=p, seed=seed),
        )
        rows.append(_row("static", f"p={p}", stats))
    stats = simulate_online(
        router, mesh, rate=rate, steps=steps, seed=seed,
        faults=FaultModel.blocks(mesh, num_blocks=2, block_side=max(m // 8, 2), seed=seed),
    )
    rows.append(_row("blocks", "2 blocks", stats))
    stats = simulate_online(
        router, mesh, rate=rate, steps=steps, seed=seed,
        faults=FaultModel.dynamic(mesh, p=0.002, repair_delay=8, seed=seed),
    )
    rows.append(_row("dynamic", "p=0.002/r=8", stats))
    return rows


def test_fault_tolerance_shapes(benchmark):
    rows = benchmark.pedantic(
        run_experiment, args=(16, (0.0, 0.01), 80), rounds=1, iterations=1
    )
    by = {(r["faults"], r["param"]): r for r in rows}
    clean = by[("static", "p=0.0")]
    faulty = by[("static", "p=0.01")]
    # the acceptance bar: 1% static link failures, delivery stays > 0.9
    assert faulty["delivery_ratio"] > 0.9
    # p = 0 is a strict no-op: nothing dodged, nothing dropped
    assert clean["resamples"] == clean["dropped"] == clean["blocked"] == 0
    assert clean["delivery_ratio"] == 1.0
    # dodging dead edges costs latency, not delivery
    assert faulty["resamples"] + faulty["detours"] > 0
    # dynamic faults repair: waiting, not dropping
    dyn = by[("dynamic", "p=0.002/r=8")]
    assert dyn["dropped"] == 0


def test_fault_injection_overhead(benchmark):
    """The fault-aware path: selection + masked advance on a live run."""
    mesh = Mesh((16, 16))
    stats = benchmark.pedantic(
        simulate_online,
        args=(HierarchicalRouter(), mesh),
        kwargs={
            "rate": 0.05,
            "steps": 80,
            "seed": 0,
            "faults": FaultModel.static(mesh, p=0.02, seed=0),
        },
        rounds=1,
        iterations=1,
    )
    assert stats.delivery_ratio > 0.9


if __name__ == "__main__":
    main_print(run_experiment, "T10 / extension: fault tolerance")
