"""Experiment T15 — the warm routing service vs cold per-call engines.

Not a paper figure: this is the engineering experiment behind ``repro
serve`` (the long-lived routing daemon).  A cold ``route(workers=4)``
call pays for its process pool on *every* request — fork, module import,
kernels-backend resolution, decomposition-cache rebuild — which dwarfs
the actual routing work for small batches.  The service boots that
machinery once: workers stay warm (backend pinned, cache resident),
requests micro-batch across one dispatch, and CSR results travel through
shared memory instead of pickles.

Two claims, both asserted on every run:

* **latency** — the mean warm-service round-trip for a small request is
  at least ``min_speedup``× (default 5×) faster than the same request
  through a cold ``route(workers=4)`` call that builds its pool inline;
* **byte-identity** — a large request (1M packets at full size) routed
  *through the service* (which shards it across the warm pool) hashes to
  the same sha256 as the plain serial engine, packet for packet.

The speedup column measures how much per-call lifecycle the daemon
amortises away; the hash column proves the daemon changed none of the
bytes while doing it.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import time

from common import main_print

from repro import cache, kernels
from repro.cli import build_workload, parse_mesh
from repro.core.path_selection import HierarchicalRouter
from repro.mesh.mesh import Mesh
from repro.service.client import ServiceClient
from repro.service.server import RoutingService
from repro.workloads.generators import random_pairs


def path_bytes_digest(paths) -> str:
    h = hashlib.sha256()
    h.update(paths.nodes.tobytes())
    h.update(paths.offsets.tobytes())
    return h.hexdigest()


def _cold_route(problem, seed: int) -> float:
    """One request the pre-service way: ``route(workers=4)`` builds its
    4-worker pool inline and tears it down before returning — the
    per-call lifecycle the daemon exists to amortise."""
    router = HierarchicalRouter()
    t0 = time.perf_counter()
    router.route(problem, seed=seed, workers=4)
    return time.perf_counter() - t0


def run_experiment(
    m: int = 16,
    small_packets: int = 64,
    requests: int = 20,
    big_packets: int = 1_000_000,
    big_m: int = 64,
    workers: int = 2,
    seed: int = 0,
    min_speedup: float = 5.0,
) -> list[dict]:
    mesh = parse_mesh(f"{m}x{m}")
    problem = build_workload("random-pairs", mesh, seed)
    if small_packets < problem.num_packets:
        problem = random_pairs(mesh, small_packets, seed=seed)
    cache.warm([cache.warmup_key(mesh, "auto")])

    # Cold baseline: every request pays pool construction + teardown.
    cold = [_cold_route(problem, seed + i) for i in range(requests)]
    cold_mean = sum(cold) / len(cold)

    rows = []
    with tempfile.TemporaryDirectory() as tmp:
        socket_path = os.path.join(tmp, "repro.sock")
        service = RoutingService(
            socket_path,
            workers=workers,
            flush_ms=1.0,
            prewarm=(f"{m}x{m}", f"{big_m}x{big_m}"),
        )
        service.start()
        try:
            # generous timeout: the 1M-packet request takes minutes on a
            # 1-CPU host (it is a throughput check, not a latency one)
            with ServiceClient(socket_path, timeout=1800.0) as client:
                client.route(problem, seed=seed)  # connection warm-up
                warm = []
                for i in range(requests):
                    t0 = time.perf_counter()
                    client.route(problem, seed=seed + i)
                    warm.append(time.perf_counter() - t0)
                warm_mean = sum(warm) / len(warm)
                speedup = cold_mean / warm_mean
                assert speedup >= min_speedup, (
                    f"warm service only {speedup:.1f}x faster than cold "
                    f"route(workers=4); needs >= {min_speedup}x"
                )
                rows.append(
                    {
                        "request": f"{small_packets}p on {m}x{m} x{requests}",
                        "cold_ms": round(cold_mean * 1e3, 1),
                        "warm_ms": round(warm_mean * 1e3, 2),
                        "speedup": round(speedup, 1),
                        "sha256[:12]": "",
                    }
                )

                big_mesh = Mesh((big_m, big_m))
                big = random_pairs(big_mesh, big_packets, seed=seed)
                serial = HierarchicalRouter().route(big, seed=seed, workers=1)
                t0 = time.perf_counter()
                via_service = client.route(big, seed=seed)
                service_wall = time.perf_counter() - t0
                d_serial = path_bytes_digest(serial.paths)
                d_service = path_bytes_digest(via_service.paths)
                assert d_service == d_serial, "service bytes diverged from serial"
                rows.append(
                    {
                        "request": f"{big_packets}p on {big_m}x{big_m} (sharded)",
                        "cold_ms": "",
                        "warm_ms": round(service_wall * 1e3, 1),
                        "speedup": "",
                        "sha256[:12]": d_service[:12] + " ==serial",
                    }
                )
        finally:
            service.stop()
    rows.append(
        {
            "request": f"(host: {os.cpu_count()} cpu, {kernels.backend()} kernels)",
            "cold_ms": "",
            "warm_ms": "",
            "speedup": "",
            "sha256[:12]": "",
        }
    )
    return rows


def test_warm_service_amortises_cold_lifecycle(benchmark):
    rows = benchmark.pedantic(
        lambda: run_experiment(
            requests=6, big_packets=20_000, big_m=16, min_speedup=5.0
        ),
        rounds=1,
        iterations=1,
    )
    assert rows[0]["speedup"] >= 5.0
    assert "==serial" in rows[1]["sha256[:12]"]


if __name__ == "__main__":
    main_print(
        lambda: run_experiment(),
        "T15 / service: warm-pool latency vs cold per-call engines",
    )
