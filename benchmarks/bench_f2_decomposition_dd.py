"""Experiment F2 — Figure 2: the d-dimensional multishift decomposition.

Figure 2 of the paper depicts the Theta(d) translated submesh types of the
3-dimensional decomposition (shift lambda = m_l / 2^ceil(log2(d+1))).  We
regenerate the shift table per level and verify the paper's structural
claims:

* the number of types at a level is at most ``2(d+1)``, and at least
  ``d+1`` once ``m_l >= d+1``;
* every shifted grid tiles the mesh (each node in exactly one submesh per
  type per level);
* Lemma 4.1's consequence: any region of span ``s`` is contained in some
  regular submesh at every height whose cells have side ``>= 2(d+1) s``.
"""

from __future__ import annotations

import numpy as np

from common import main_print

from repro.core.decomposition import Decomposition, num_shift_slots
from repro.mesh.mesh import Mesh
from repro.mesh.submesh import Submesh


def run_experiment(d: int = 3, m: int = 16) -> list[dict]:
    dec = Decomposition(Mesh((m,) * d), scheme="multishift")
    rows = []
    for level in range(dec.k + 1):
        shifts = dec.shifts(level)
        rows.append(
            {
                "level": level,
                "side": dec.side(level),
                "lambda": dec.lam(level) if level > 0 else 0,
                "types": len(shifts),
                "shifts": ",".join(str(s) for s in shifts),
                "min_types(d+1)": d + 1,
                "max_types(2(d+1))": 2 * (d + 1),
            }
        )
    return rows


def _coverage_check(dec: Decomposition, samples: int, seed: int) -> bool:
    """Lemma 4.1: a random small region is contained at the pigeonhole height."""
    mesh = dec.mesh
    rng = np.random.default_rng(seed)
    d = mesh.d
    for _ in range(samples):
        s, t = (int(x) for x in rng.integers(mesh.n, size=2))
        if s == t:
            continue
        region = Submesh.bounding_box(mesh, s, t)
        span = max(h - l + 1 for l, h in zip(region.lo, region.hi))
        for level in range(dec.k + 1):
            if dec.side(level) >= 2 * (d + 1) * span:
                if not dec.containing_regulars(region, level):
                    return False
    return True


def test_figure2_shift_table(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    d = 3
    assert num_shift_slots(d) == 4
    for row in rows[1:]:
        assert row["types"] <= 2 * (d + 1)
        if row["side"] >= d + 1:
            assert row["types"] >= d + 1


def test_lemma_4_1_coverage(benchmark):
    dec = Decomposition(Mesh((16, 16, 16)), scheme="multishift")
    ok = benchmark.pedantic(_coverage_check, args=(dec, 40, 0), rounds=1, iterations=1)
    assert ok


def test_each_node_in_one_submesh_per_type(benchmark):
    dec = Decomposition(Mesh((8, 8, 8)), scheme="multishift")

    def check():
        node = dec.mesh.node(3, 5, 6)
        total = 0
        for level in range(1, dec.k + 1):
            for j in range(2, dec.num_types(level) + 1):
                hits = sum(
                    1
                    for r in dec.shifted_at_level(level, j)
                    if r.box.contains_node(node)
                )
                assert hits == 1
                total += hits
        return total

    assert benchmark.pedantic(check, rounds=1, iterations=1) > 0


if __name__ == "__main__":
    main_print(
        run_experiment, "F2 / Figure 2: multishift decomposition shift table (16^3)"
    )
