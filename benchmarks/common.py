"""Shared helpers for the benchmark/experiment harness.

Every ``bench_*.py`` module in this directory regenerates one evaluation
artifact of the paper (a figure or a theorem treated as a table) — see the
per-experiment index in DESIGN.md.  Each module offers:

* ``run_experiment()`` — computes and returns the experiment's rows
  (pure, reusable; ``benchmarks/run_all.py`` collects them for
  EXPERIMENTS.md);
* ``test_*`` functions — pytest-benchmark entries timing the experiment's
  computational kernel *and* asserting the paper's qualitative claims on
  the produced rows;
* a ``__main__`` block printing the full table.
"""

from __future__ import annotations

import sys
from typing import Callable, Mapping, Sequence

from repro.analysis.reporting import format_table

__all__ = ["print_experiment", "main_print"]


def print_experiment(
    title: str, rows: Sequence[Mapping], columns: Sequence[str] | None = None
) -> None:
    print()
    print("=" * len(title))
    print(title)
    print("=" * len(title))
    print(format_table(rows, columns))
    print()


def main_print(run: Callable[[], Sequence[Mapping]], title: str) -> None:
    rows = run()
    print_experiment(title, rows)
    sys.stdout.flush()
