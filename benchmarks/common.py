"""Shared helpers for the benchmark/experiment harness.

Every ``bench_*.py`` module in this directory regenerates one evaluation
artifact of the paper (a figure or a theorem treated as a table) — see the
per-experiment index in DESIGN.md.  Each module offers:

* ``run_experiment()`` — computes and returns the experiment's rows
  (pure, reusable; ``benchmarks/run_all.py`` collects them for
  EXPERIMENTS.md);
* ``test_*`` functions — pytest-benchmark entries timing the experiment's
  computational kernel *and* asserting the paper's qualitative claims on
  the produced rows;
* a ``__main__`` block printing the full table.
"""

from __future__ import annotations

import os
import sys
import time
from typing import Callable, Mapping, Sequence

from repro.analysis.reporting import format_table

__all__ = ["print_experiment", "main_print", "profiled_run"]


def print_experiment(
    title: str, rows: Sequence[Mapping], columns: Sequence[str] | None = None
) -> None:
    print()
    print("=" * len(title))
    print(title)
    print("=" * len(title))
    print(format_table(rows, columns))
    print()


def profiled_run(run: Callable[[], Sequence[Mapping]]) -> Sequence[Mapping]:
    """Run an experiment, printing wall time and cache stats when profiling.

    Profiling is enabled by ``REPRO_PROFILE=1`` in the environment (so
    ``REPRO_PROFILE=1 python benchmarks/bench_*.py`` works for every
    benchmark without per-module flags).  ``REPRO_PROFILE_TRACE=<path>``
    additionally captures a JSONL summary of the run.
    """
    if not os.environ.get("REPRO_PROFILE"):
        return run()
    from repro import cache
    from repro.obs import Profiler

    profiler = Profiler()
    before = cache.stats()
    t0 = time.perf_counter()
    with profiler.stage("experiment"):
        rows = run()
    wall = time.perf_counter() - t0
    after = cache.stats()
    print(f"[profile] wall={wall:.3f}s cache: "
          f"hits +{after.hits - before.hits}, misses +{after.misses - before.misses}, "
          f"entries={after.entries}", file=sys.stderr)
    trace = os.environ.get("REPRO_PROFILE_TRACE")
    if trace:
        profiler.write_trace(trace)
    return rows


def main_print(run: Callable[[], Sequence[Mapping]], title: str) -> None:
    rows = profiled_run(run)
    print_experiment(title, rows)
    sys.stdout.flush()
