"""Experiment T2 — Lemma 3.3: common-ancestor height <= ceil(log2 dist) + 2.

Buckets sampled pairs by distance and reports the maximum observed meeting
height per bucket against the lemma's bound.  Expected shape: max height
tracks ``log2 dist`` with the +2 slack rarely saturated.
"""

from __future__ import annotations

import math

import numpy as np

from common import main_print

from repro.core.bridges import bridge_height_bound_2d, common_ancestor_2d
from repro.core.decomposition import Decomposition
from repro.mesh.mesh import Mesh


def run_experiment(m: int = 64, samples: int = 3000) -> list[dict]:
    mesh = Mesh((m, m))
    dec = Decomposition(mesh)
    rng = np.random.default_rng(0)
    buckets: dict[int, list[int]] = {}
    for _ in range(samples):
        s, t = (int(x) for x in rng.integers(mesh.n, size=2))
        if s == t:
            continue
        dist = int(mesh.distance(s, t))
        h, _ = common_ancestor_2d(dec, s, t)
        buckets.setdefault(math.ceil(math.log2(dist)) if dist > 1 else 0, []).append(
            h
        )
    rows = []
    for key in sorted(buckets):
        hs = buckets[key]
        dist_hi = 1 << key
        rows.append(
            {
                "dist_bucket": f"<=2^{key}",
                "pairs": len(hs),
                "max_height": max(hs),
                "mean_height": float(np.mean(hs)),
                "lemma_bound": bridge_height_bound_2d(max(dist_hi, 1)),
            }
        )
    return rows


def test_lemma_3_3(benchmark):
    rows = benchmark.pedantic(run_experiment, args=(32, 1000), rounds=1, iterations=1)
    for row in rows:
        assert row["max_height"] <= row["lemma_bound"]
    # heights genuinely grow with distance (not all met at the root)
    assert rows[0]["max_height"] < rows[-1]["lemma_bound"]


def test_bridge_search_throughput(benchmark):
    """Kernel: 1000 arithmetic common-ancestor queries on 64x64."""
    mesh = Mesh((64, 64))
    dec = Decomposition(mesh)
    rng = np.random.default_rng(1)
    pairs = rng.integers(mesh.n, size=(1000, 2))
    pairs = pairs[pairs[:, 0] != pairs[:, 1]]

    def kernel():
        return sum(
            common_ancestor_2d(dec, int(s), int(t))[0] for s, t in pairs
        )

    assert benchmark(kernel) > 0


if __name__ == "__main__":
    main_print(run_experiment, "T2 / Lemma 3.3: bridge height vs log2(dist) + 2")
