"""Experiment X1 (extension) — online routing: latency vs injection rate.

The paper's introduction argues oblivious path selection is *the* tool for
online routing, "where packets continuously arrive in the network".  This
extension experiment quantifies it: Bernoulli packet injection per node per
step, immediate oblivious path selection, synchronous one-packet-per-edge
scheduling.

Expected shape:
* at light load, latency ~ stretch x distance: the hierarchical router and
  dimension-order routing are near-distance, Valiant pays ~m even when the
  network is idle;
* as load rises, congestion determines the knee: routers with balanced
  paths sustain higher rates before queues grow.
"""

from __future__ import annotations

from common import main_print

from repro.core.path_selection import HierarchicalRouter
from repro.mesh.mesh import Mesh
from repro.routing.baselines import RandomDimOrderRouter, ValiantRouter
from repro.simulation.online import latency_vs_load, simulate_online


def _neighbor_dest(mesh, src, rng):
    nbrs = mesh.neighbors(src)
    return int(nbrs[int(rng.integers(len(nbrs)))])


def run_experiment(m: int = 16, rates=(0.01, 0.05, 0.15), steps: int = 200) -> list[dict]:
    mesh = Mesh((m, m))
    rows = []
    for router in (HierarchicalRouter(), RandomDimOrderRouter(), ValiantRouter()):
        for traffic, dest_fn in (("uniform", None), ("neighbor", _neighbor_dest)):
            kwargs = {} if dest_fn is None else {"dest_fn": dest_fn}
            for rate in rates:
                stats = simulate_online(
                    router, mesh, rate=rate, steps=steps, seed=11, **kwargs
                )
                rows.append(
                    {
                        "router": router.name,
                        "traffic": traffic,
                        "rate": rate,
                        "injected": stats.injected,
                        "mean_latency": stats.mean_latency,
                        "p95_latency": stats.p95_latency,
                        "slowdown": stats.mean_slowdown,
                        "max_queue": stats.max_queue,
                    }
                )
    return rows


def test_online_shapes(benchmark):
    rows = benchmark.pedantic(
        run_experiment, args=(16, (0.01, 0.1), 150), rounds=1, iterations=1
    )
    by = {(r["router"], r["traffic"], r["rate"]): r for r in rows}
    # Valiant pays its stretch as latency on idle neighbor traffic.
    ours = by[("hierarchical", "neighbor", 0.01)]
    valiant = by[("valiant", "neighbor", 0.01)]
    assert ours.get("mean_latency") * 1.5 < valiant["mean_latency"]
    # latency grows with load for every router on uniform traffic
    for router in ("hierarchical", "random-dim-order", "valiant"):
        light = by[(router, "uniform", 0.01)]["mean_latency"]
        heavy = by[(router, "uniform", 0.1)]["mean_latency"]
        assert heavy >= 0.8 * light  # monotone up to noise


def test_online_simulation_throughput(benchmark):
    mesh = Mesh((16, 16))
    router = HierarchicalRouter()
    stats = benchmark.pedantic(
        simulate_online,
        args=(router, mesh),
        kwargs={"rate": 0.05, "steps": 150, "seed": 0},
        rounds=1,
        iterations=1,
    )
    assert stats.delivered == stats.injected


if __name__ == "__main__":
    main_print(run_experiment, "X1 / extension: online routing latency vs load")
