"""Experiment T4 — Theorem 4.2: d-dimensional stretch is O(d^2).

Sweeps the dimension d at (roughly) constant node budget, measuring the
maximum stretch of the general-variant router over random permutations and
adjacent straddling pairs, against the proof's explicit ceiling
``32 d (d+1) + 16 d``.

Expected shape: measured max stretch grows slowly with d and sits far below
the ceiling; the ratio measured/d^2 stays bounded.
"""

from __future__ import annotations

import numpy as np

from common import main_print

from repro.analysis.theory import stretch_bound_general
from repro.core.path_selection import HierarchicalRouter
from repro.mesh.mesh import Mesh
from repro.routing.base import RoutingProblem


def _straddling(mesh: Mesh) -> RoutingProblem:
    """Adjacent pairs across the central cut of dimension 0."""
    m = mesh.sides[0]
    rng = np.random.default_rng(0)
    sources, dests = [], []
    for _ in range(64):
        coords = rng.integers(0, m, size=mesh.d)
        a = coords.copy()
        a[0] = m // 2 - 1
        b = coords.copy()
        b[0] = m // 2
        sources.append(int(a @ mesh.strides))
        dests.append(int(b @ mesh.strides))
    return RoutingProblem(mesh, np.asarray(sources), np.asarray(dests), "straddling")


def run_experiment(configs=((1, 64), (2, 16), (3, 8), (4, 4), (5, 4))) -> list[dict]:
    from repro.workloads.permutations import random_permutation

    rows = []
    for d, m in configs:
        mesh = Mesh((m,) * d)
        router = HierarchicalRouter(variant="general")
        for prob in (random_permutation(mesh, seed=d), _straddling(mesh)):
            res = router.route(prob, seed=1)
            vals = res.stretches[np.isfinite(res.stretches)]
            rows.append(
                {
                    "d": d,
                    "m": m,
                    "workload": prob.name,
                    "max_stretch": float(vals.max()),
                    "mean_stretch": float(vals.mean()),
                    "bound_32d(d+1)+16d": stretch_bound_general(d),
                    "max/d^2": float(vals.max()) / d**2,
                }
            )
    return rows


def test_theorem_4_2(benchmark):
    rows = benchmark.pedantic(run_experiment, args=(((2, 16), (3, 8), (4, 4)),), rounds=1, iterations=1)
    for row in rows:
        assert row["max_stretch"] <= row["bound_32d(d+1)+16d"]
    # normalised stretch stays bounded: O(d^2) shape
    assert max(r["max/d^2"] for r in rows) <= 16


def test_route_permutation_3d_throughput(benchmark):
    from repro.workloads.permutations import random_permutation

    mesh = Mesh((8, 8, 8))
    prob = random_permutation(mesh, seed=0)
    router = HierarchicalRouter(variant="general")
    result = benchmark(router.route, prob, 0)
    assert result.dilation > 0


if __name__ == "__main__":
    main_print(run_experiment, "T4 / Theorem 4.2: stretch O(d^2) across dimensions")
