"""Experiment X6 (extension) — adversarial search for bad workloads.

Maggs et al. [9] prove every oblivious algorithm on the mesh has worst-case
congestion ``Ω(C* log n)`` — the bound Theorem 3.9 meets.  We probe the
worst case empirically: a hill-climbing adversary mutates workloads to
maximise ``E[C] / C*-lower-bound`` for each router.

Expected shape: against the deterministic dimension-order router the
adversary keeps climbing (toward the Θ(m) corner-turn trap); against the
randomized hierarchical router it saturates at a small multiple of
``log2 n`` — randomization leaves the adversary nothing to exploit beyond
the unavoidable log factor.
"""

from __future__ import annotations

from common import main_print

from repro.analysis.adversary_search import adversarial_ratio_search
from repro.core.path_selection import HierarchicalRouter
from repro.mesh.mesh import Mesh
from repro.routing.baselines import DimensionOrderRouter, ValiantRouter


def run_experiment(m: int = 8, budget: int = 200) -> list[dict]:
    mesh = Mesh((m, m))
    rows = []
    for router, seeds, iters in (
        (DimensionOrderRouter(), (0,), budget),
        (ValiantRouter(), (0, 1), budget // 3),
        (HierarchicalRouter(), (0, 1), budget // 3),
    ):
        res = adversarial_ratio_search(
            router, mesh, iterations=iters, seeds=seeds, rng_seed=1
        )
        traj = res["trajectory"]
        rows.append(
            {
                "router": router.name,
                "search_steps": iters,
                "start_ratio": traj[0],
                "best_ratio": res["best_ratio"],
                "gain": res["best_ratio"] / max(traj[0], 1e-9),
                "log2n": res["log2n"],
                "best/log2n": res["best_ratio"] / res["log2n"],
            }
        )
    return rows


def test_adversary_search_shapes(benchmark):
    rows = benchmark.pedantic(
        run_experiment, args=(8, 120), rounds=1, iterations=1
    )
    by = {r["router"]: r for r in rows}
    # the randomized hierarchical router saturates near log2 n
    assert by["hierarchical"]["best/log2n"] <= 1.5
    # the adversary hurts the deterministic router more
    assert by["dim-order"]["best_ratio"] > by["hierarchical"]["best_ratio"]


if __name__ == "__main__":
    main_print(run_experiment, "X6 / extension: adversarial workload search")
