"""Experiment A1 — ablation: bridge submeshes (the paper's key new idea).

Same machinery, one switch: ``use_bridges``.  With bridges the hierarchy is
the paper's access *graph*; without, it degenerates to the access *tree* of
Maggs et al. [9].  Reports stretch and congestion side by side.

Expected shape: congestion is statistically indistinguishable (both are
O(C* log n)); stretch collapses from Theta(m) to <= 64 on local traffic —
bridges buy the stretch for free, which is the paper's contribution.
"""

from __future__ import annotations

import numpy as np

from common import main_print

from repro.core.path_selection import HierarchicalRouter
from repro.mesh.mesh import Mesh


def run_experiment(m: int = 32, seeds=(0, 1, 2)) -> list[dict]:
    from repro.workloads.generators import local_traffic, nearest_neighbor
    from repro.workloads.permutations import random_permutation

    mesh = Mesh((m, m))
    with_bridges = HierarchicalRouter(name="access-graph(bridges)")
    without = HierarchicalRouter(use_bridges=False, name="access-tree(no bridges)")
    workloads = [
        nearest_neighbor(mesh, seed=0),
        local_traffic(mesh, radius=3, seed=0),
        random_permutation(mesh, seed=0),
    ]
    rows = []
    for prob in workloads:
        for router in (with_bridges, without):
            cs, strs = [], []
            for seed in seeds:
                res = router.route(prob, seed=seed)
                cs.append(res.congestion)
                strs.append(res.stretch)
            rows.append(
                {
                    "workload": prob.name,
                    "router": router.name,
                    "C_mean": float(np.mean(cs)),
                    "max_stretch": float(np.max(strs)),
                }
            )
    return rows


def test_bridges_cut_stretch_keep_congestion(benchmark):
    rows = benchmark.pedantic(run_experiment, args=(16, (0, 1)), rounds=1, iterations=1)
    by_key = {(r["workload"], r["router"]): r for r in rows}
    for wl in ("nearest-neighbor", "local-r3"):
        with_b = by_key[(wl, "access-graph(bridges)")]
        without = by_key[(wl, "access-tree(no bridges)")]
        assert with_b["max_stretch"] <= 64
        assert without["max_stretch"] > 2 * with_b["max_stretch"]
        # congestion within a small factor either way
        assert with_b["C_mean"] <= 3 * without["C_mean"] + 3
        assert without["C_mean"] <= 3 * with_b["C_mean"] + 3


if __name__ == "__main__":
    main_print(run_experiment, "A1 / ablation: bridges on vs off")
