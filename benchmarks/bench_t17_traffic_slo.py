"""Experiment T17 — traffic realism: SLO telemetry, capacity, admission.

ROADMAP item 4 asks the online simulator to face service-style load and
report like a service.  This experiment is that dashboard, in three
regimes sharing one row schema:

* ``capacity`` — a Poisson offered-load sweep (five points spanning
  under-load to past the knee) for three routers including the
  ``semi-oblivious`` competitor: each row carries the latency percentile
  ladder (p50/p99/p999 from the exact-merge histogram), delivery-SLO
  attainment against a ``4m``-step deadline, makespan and p99 backlog —
  the saturation curve that locates each router's capacity knee;
* ``faults`` — the same service metrics under a static link-failure
  regime, where attainment accounts dropped packets against the
  *injected* population (an SLO miss, not a statistical footnote);
* ``admission`` — an A/B pair at hotspot overload: token-bucket +
  backpressure admission on vs. off, byte-identical path selection in
  both arms.  Admission trades ingress delay for a hard cap on
  in-network pressure, so the ``on`` arm's p99 backlog must sit far
  below the ``off`` arm's.
"""

from __future__ import annotations

from common import main_print

from repro.faults.model import FaultModel
from repro.mesh.mesh import Mesh
from repro.routing.registry import make_router
from repro.simulation import AdmissionParams, SLOParams, capacity_curve
from repro.workloads.traffic import HotspotTraffic

#: the capacity sweep covers the paper's scheme, the deterministic
#: baseline it beats, and the sparse-sampling competitor
CAPACITY_ROUTERS = ("hierarchical", "dim-order", "semi-oblivious")
#: five offered-load points: comfortably under-loaded to past the knee
RATES = (0.02, 0.05, 0.1, 0.2, 0.35)

_COLUMNS = (
    "regime",
    "router",
    "offered_rate",
    "injected",
    "delivered",
    "makespan",
    "p50",
    "p99",
    "p999",
    "attainment",
    "backlog_p99",
    "admission_dropped",
)


def _shape(regime: str, row: dict) -> dict:
    """Project a capacity_curve row onto the shared T17 schema."""
    return {"regime": regime, **{k: row.get(k, 0) for k in _COLUMNS if k != "regime"}}


def run_experiment(
    m: int = 16,
    rates=RATES,
    steps: int = 100,
    seed: int = 0,
    fault_p: float = 0.02,
    overload_rate: float = 0.6,
) -> list[dict]:
    """One row per (regime, router, offered rate) on the ``m x m`` mesh.

    The deadline is ``4m`` steps — loose enough that an uncongested mesh
    meets it trivially (max distance ``2(m-1)``), tight enough that the
    saturated points visibly miss it.  The admission pair runs a skewed
    hotspot at ``overload_rate`` with a token bucket sized well under
    the offered rate plus a backpressure cap, so the in-network p99
    backlog collapses while path selection stays byte-identical.
    """
    mesh = Mesh((m, m))
    slo = SLOParams(deadline=4 * m)
    rows: list[dict] = []

    for name in CAPACITY_ROUTERS:
        for row in capacity_curve(
            make_router(name), mesh, rates, steps=steps, seed=seed, slo=slo
        ):
            rows.append(_shape("capacity", row))

    faults = FaultModel.static(mesh, p=fault_p, seed=seed)
    for row in capacity_curve(
        make_router("hierarchical"),
        mesh,
        (rates[2],),
        steps=steps,
        seed=seed,
        slo=slo,
        faults=faults,
    ):
        rows.append(_shape(f"faults-static-{fault_p}", row))

    hotspot = lambda rate: HotspotTraffic(rate=rate, hot_frac=0.05, hot_weight=0.9)
    # token bucket well under the offered rate, a hard in-network cap,
    # and staleness shedding so overload ends in counted admission drops
    # rather than an unbounded ingress queue
    admission = AdmissionParams(rate_limit=m, max_backlog=8 * m, max_wait=16 * m)
    for regime, adm in (("admission-off", None), ("admission-on", admission)):
        for row in capacity_curve(
            make_router("hierarchical"),
            mesh,
            (overload_rate,),
            steps=steps,
            seed=seed,
            traffic_factory=hotspot,
            slo=slo,
            admission=adm,
        ):
            rows.append(_shape(regime, row))
    return rows


def test_traffic_slo(benchmark):
    rows = benchmark.pedantic(
        run_experiment,
        kwargs={"m": 8, "steps": 60, "overload_rate": 0.6},
        rounds=1,
        iterations=1,
    )
    capacity = [r for r in rows if r["regime"] == "capacity"]
    routers = {r["router"] for r in capacity}

    # The sweep covers >= 3 routers including the competitor, at >= 5
    # offered-load points each, and every row carries the full ladder.
    assert routers >= set(CAPACITY_ROUTERS) and "semi-oblivious" in routers
    for name in CAPACITY_ROUTERS:
        points = [r for r in capacity if r["router"] == name]
        assert len({r["offered_rate"] for r in points}) >= 5
        for r in points:
            assert r["p50"] <= r["p99"] <= r["p999"]
            assert 0.0 <= r["attainment"] <= 1.0
    # Offered load is monotone in injections and saturates attainment:
    # the lightest point meets the deadline at least as often as the
    # heaviest (strictly more once past the knee).
    for name in CAPACITY_ROUTERS:
        points = sorted(
            (r for r in capacity if r["router"] == name),
            key=lambda r: r["offered_rate"],
        )
        assert points[0]["injected"] < points[-1]["injected"]
        assert points[0]["attainment"] >= points[-1]["attainment"]

    # The fault regime reports attainment against injected packets and
    # actually exercises drops-or-misses accounting.
    fault = [r for r in rows if r["regime"].startswith("faults-")]
    assert len(fault) == 1 and 0.0 <= fault[0]["attainment"] <= 1.0
    assert fault[0]["delivered"] <= fault[0]["injected"]

    # Admission A/B at overload: identical arrivals, byte-identical path
    # selection — and a hard, measurable cap on in-network p99 backlog.
    off = next(r for r in rows if r["regime"] == "admission-off")
    on = next(r for r in rows if r["regime"] == "admission-on")
    assert on["injected"] == off["injected"]
    assert on["backlog_p99"] < off["backlog_p99"]


if __name__ == "__main__":
    main_print(run_experiment, "T17 / service: traffic, SLO telemetry, admission")
