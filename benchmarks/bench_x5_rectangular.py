"""Experiment X5 (extension) — rectangular power-of-two meshes.

The paper's model allows per-dimension side lengths; its algorithm assumes
a cube.  The :class:`~repro.core.rect.RectHierarchicalRouter` extension
generalises the construction (per-dimension λ_i shifts; exhausted
dimensions stop refining).  This experiment measures what survives without
the equal-sides proof:

* validity and stretch across aspect ratios 1:1 .. 32:1;
* congestion ratio against the C* lower bound;
* agreement with the proved cube router on actual cubes.

Expected shape: quality matches the cube router at aspect 1:1 and degrades
gracefully (stretch grows with the aspect ratio as bridges thin out, but
stays within a small multiple of the cube envelope for moderate ratios).
"""

from __future__ import annotations

import numpy as np

from common import main_print

from repro.core.path_selection import HierarchicalRouter
from repro.core.rect import RectHierarchicalRouter
from repro.mesh.mesh import Mesh
from repro.metrics.bounds import average_load_lower_bound, boundary_congestion


def run_experiment(
    configs=((16, 16), (32, 8), (64, 4), (64, 2), (16, 4, 4)),
    packets: int = 300,
) -> list[dict]:
    from repro.workloads.generators import random_pairs

    rows = []
    for sides in configs:
        mesh = Mesh(sides)
        prob = random_pairs(mesh, packets, seed=11)
        bound = max(
            boundary_congestion(mesh, prob.sources, prob.dests),
            average_load_lower_bound(mesh, prob.sources, prob.dests),
            1.0,
        )
        res = RectHierarchicalRouter().route(prob, seed=12)
        rows.append(
            {
                "mesh": "x".join(map(str, sides)),
                "aspect": max(sides) // min(sides),
                "valid": res.validate(),
                "C": res.congestion,
                "C_ratio": res.congestion / bound,
                "max_stretch": res.stretch,
            }
        )
    return rows


def test_rectangular_extension(benchmark):
    rows = benchmark.pedantic(
        run_experiment, args=(((16, 16), (32, 8), (16, 4, 4)), 200),
        rounds=1, iterations=1,
    )
    for row in rows:
        assert row["valid"]
        # graceful degradation: within 2x the cube envelope even off-cube
        d = row["mesh"].count("x") + 1
        from repro.analysis.theory import stretch_bound_general

        assert row["max_stretch"] <= 2 * stretch_bound_general(d)
    # on the cube, quality tracks the proved router
    cube_row = rows[0]
    from repro.workloads.generators import random_pairs

    mesh = Mesh((16, 16))
    prob = random_pairs(mesh, 200, seed=11)
    proved = HierarchicalRouter(variant="general", scheme="multishift").route(
        prob, seed=12
    )
    assert cube_row["C"] <= 2 * proved.congestion + 4


if __name__ == "__main__":
    main_print(run_experiment, "X5 / extension: rectangular power-of-two meshes")
