"""Experiment X2 (extension) — Lemma 3.8 verified *in expectation*.

The congestion theorem bounds ``E[C(e)] <= 16 C* (log2 D + 3)`` per edge
(Lemma 3.8) before applying Chernoff.  Using the closed-form subpath
probabilities (Lemma 3.5's one-bend structure) we compute ``E[C(e)]``
*exactly* for the 2-D router — no sampling — and compare the maximum
against the lemma's ceiling with the multicommodity-LP lower bound in place
of ``C*``, plus Monte-Carlo agreement.

Expected shape: max_e E[C(e)] sits well below the 16 (log D + 3) envelope
and matches the empirical mean load to within sampling error.
"""

from __future__ import annotations

import numpy as np

from common import main_print

from repro.analysis.expected_congestion import expected_edge_loads
from repro.analysis.theory import congestion_bound_2d
from repro.core.path_selection import HierarchicalRouter
from repro.mesh.mesh import Mesh
from repro.metrics.bounds import boundary_congestion, lp_congestion_lower_bound


def run_experiment(sizes=(4, 8), mc_trials: int = 200) -> list[dict]:
    from repro.workloads.permutations import bit_complement, transpose

    rows = []
    for m in sizes:
        mesh = Mesh((m, m))
        for prob in (transpose(mesh), bit_complement(mesh)):
            router = HierarchicalRouter(drop_cycles=False)
            exact = expected_edge_loads(router, prob)
            acc = np.zeros(mesh.num_edges)
            for seed in range(mc_trials):
                acc += router.route(prob, seed=seed).edge_loads
            mc = acc / mc_trials
            if mesh.n <= 64:
                c_star = lp_congestion_lower_bound(mesh, prob.sources, prob.dests)
            else:
                c_star = boundary_congestion(mesh, prob.sources, prob.dests)
            rows.append(
                {
                    "m": m,
                    "workload": prob.name,
                    "max_E[C(e)]": float(exact.max()),
                    "mc_max_mean_load": float(mc.max()),
                    "lemma38_ceiling": congestion_bound_2d(c_star, prob.max_distance),
                    "C*_lower": c_star,
                    "mc_rel_err": float(
                        np.abs(exact - mc)[exact > 0.2].max()
                        / exact[exact > 0.2].max()
                    ),
                }
            )
    return rows


def test_lemma_3_8_in_expectation(benchmark):
    rows = benchmark.pedantic(
        run_experiment, args=((4, 8), 150), rounds=1, iterations=1
    )
    for row in rows:
        assert row["max_E[C(e)]"] <= row["lemma38_ceiling"], row
        assert row["mc_rel_err"] < 0.25


if __name__ == "__main__":
    main_print(run_experiment, "X2 / extension: exact E[C(e)] vs Lemma 3.8 ceiling")
