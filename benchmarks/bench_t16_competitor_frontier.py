"""Experiment T16 — competitor frontier: congestion x stretch x random bits.

The paper's algorithm ``H`` is one point in a design space.  This
experiment places the two competitor oblivious routers from the wider
literature next to it on every axis the paper cares about:

* ``semi-oblivious`` (Zuzic-style sparse path sampling): pays
  ``k * ceil(log2 n)`` fresh bits per packet to sample ``k`` perturbed
  shortest paths and keeps the one with the lowest shortest-path load
  potential — near-shortest (weighted stretch <= 1+eps) but only
  heuristically load-balanced;
* ``racke-tree`` (Räcke-style decomposition tree): routes along the
  tree-induced path for *zero* random bits from compact per-node state,
  buying topology-generality at the price of unbounded stretch.

Both run on arbitrary connected weighted graphs (``repro.mesh.graph``),
so the sweep spans the mesh families the paper analyses *and* general
graphs where ``H`` is undefined: a weighted random-regular graph and a
dumbbell (two cliques joined by one cheap bridge — the classic bad case
for shortest-path-ish schemes, flattering for the tree).

The mesh workload is the paper's own adversarial construction ``Π_A``
against deterministic dimension-order (§5.1), so the congestion axis
separates the schemes: ``H`` must beat dimension-order there, and the
semi-oblivious bit price must undercut ``H``'s fresh-bit spend.
"""

from __future__ import annotations

import numpy as np

from common import main_print

from repro.core.randomness import bits_for_range
from repro.mesh.graph import named_graph
from repro.mesh.mesh import Mesh
from repro.routing.competitors import state_bits_per_node
from repro.routing.registry import make_router
from repro.workloads.generators import random_pairs
from repro.workloads.permutations import random_permutation

#: routers that only exist on meshes vs the topology-generic competitors
MESH_ROUTERS = ("hierarchical", "dim-order", "valiant")
COMPETITORS = ("semi-oblivious", "racke-tree")


def _adversarial_mesh_problem(m: int):
    """Π_A at mixed block sizes (the bench_t14 workload): adversarial for
    dimension-order, graded in packet distance."""
    from repro.routing.base import RoutingProblem
    from repro.workloads.adversarial import adversarial_for_router

    mesh = Mesh((m, m))
    parts = [
        adversarial_for_router(make_router("dim-order"), mesh, l)[0]
        for l in (2, 4, max(4, m // 4), max(4, m // 2))
    ]
    return mesh, RoutingProblem(
        mesh,
        np.concatenate([p.sources for p in parts]),
        np.concatenate([p.dests for p in parts]),
        name=f"pi-A-mixed-{m}",
    )


def run_experiment(m: int = 16, seeds=(0, 1, 2)) -> list[dict]:
    """One row per (topology, router): congestion, stretch, random bits.

    Topologies: the m x m mesh under Π_A, an 8x8 torus and the two named
    general graphs under a random permutation.  Mesh-only routers are
    skipped off the mesh families; every row meters its actual fresh-bit
    spend with ``budget="measure"`` and reports the compact per-node
    state for the tree router.
    """
    mesh, pia = _adversarial_mesh_problem(m)
    torus = Mesh((8, 8), torus=True)
    arenas = [
        (f"{m}x{m} pi-A", mesh, lambda seed, p=pia: p),
        ("8x8t perm", torus, lambda seed, t=torus: random_permutation(t, seed=seed)),
        (
            "random-regular-24",
            named_graph("random-regular-24"),
            lambda seed: random_permutation(named_graph("random-regular-24"), seed=seed),
        ),
        (
            "dumbbell-16",
            named_graph("dumbbell-16"),
            lambda seed: random_permutation(named_graph("dumbbell-16"), seed=seed),
        ),
    ]
    rows = []
    for arena, topo, make_problem in arenas:
        names = (MESH_ROUTERS + COMPETITORS) if isinstance(topo, Mesh) else COMPETITORS
        for name in names:
            router = make_router(name)
            cs, sts, bits, mxs = [], [], [], []
            for seed in seeds:
                res = router.route(make_problem(seed), seed=seed, budget="measure")
                cs.append(res.congestion)
                sts.append(res.stretch)
                bits.append(res.budget.bits_per_packet)
                mxs.append(res.budget.max_bits)
            row = {
                "arena": arena,
                "router": name,
                "congestion": float(np.mean(cs)),
                "stretch": round(float(np.max(sts)), 2),
                "bits/packet": round(float(np.mean(bits)), 2),
                "max_bits": int(np.max(mxs)),
            }
            if name == "racke-tree":
                row["state_bits/node"] = state_bits_per_node(topo)
            rows.append(row)
    return rows


def test_competitor_frontier(benchmark):
    rows = benchmark.pedantic(
        run_experiment, kwargs={"m": 8, "seeds": (0,)}, rounds=1, iterations=1
    )
    by = {(r["arena"], r["router"]): r for r in rows}
    mesh_arena = "8x8 pi-A"

    # Theorem 3.9's direction on the paper's own adversary: H beats the
    # deterministic scheme Π_A was built against.
    assert (
        by[(mesh_arena, "hierarchical")]["congestion"]
        < by[(mesh_arena, "dim-order")]["congestion"]
    )
    # The semi-oblivious bit price undercuts H's fresh-bit budget (the
    # structural ceiling every fresh hierarchical run is entitled to)...
    from repro.core.budget import default_budget_bits

    assert (
        by[(mesh_arena, "semi-oblivious")]["bits/packet"]
        < default_budget_bits(Mesh((8, 8)))
    )
    # ...and its ceiling is exactly k * ceil(log2 n) for nontrivial pairs.
    assert by[(mesh_arena, "semi-oblivious")]["max_bits"] == 4 * bits_for_range(64)
    # The tree router is bit-free everywhere, from logarithmic state.
    for arena in ("8x8 pi-A", "8x8t perm", "random-regular-24", "dumbbell-16"):
        tree = by[(arena, "racke-tree")]
        assert tree["bits/packet"] == 0 and tree["max_bits"] == 0
        assert 0 < tree["state_bits/node"] <= 8 * (14 + 4 * 8)
    # Competitors actually cover the general graphs (H has no row there)...
    assert ("random-regular-24", "hierarchical") not in by
    for arena in ("random-regular-24", "dumbbell-16"):
        for name in COMPETITORS:
            assert by[(arena, name)]["congestion"] >= 1
    # ...and the dumbbell shows the trade: the tree's structural path is
    # never shorter than the (1+eps)-stretch sampler's.
    assert (
        by[("dumbbell-16", "racke-tree")]["stretch"]
        >= by[("dumbbell-16", "semi-oblivious")]["stretch"]
    )


def test_semi_oblivious_batch_throughput(benchmark):
    """The sampling router's batched route() on a sizable general-graph
    workload — guards against a per-packet-Dijkstra regression."""
    g = named_graph("random-regular-24")
    problem = random_pairs(g, 2_000, seed=0)
    router = make_router("semi-oblivious")
    router.route(problem, seed=0)  # warm the cached tables
    result = benchmark(lambda: router.route(problem, seed=1))
    assert result.congestion >= 1


if __name__ == "__main__":
    main_print(run_experiment, "T16 / competitors: congestion x stretch x bits frontier")
