"""Experiment T6 — Section 5.1/5.2: randomization is necessary.

For each packet distance ``l``, builds the adversarial instance ``Π_A`` for
the deterministic dimension-order router (Section 5.1) and compares:

* the congestion the deterministic router is *forced* to (all of ``Π_A``
  over one edge — Lemma 5.1 with kappa = 1, growing like ``l / d``), vs
* the congestion of the randomized hierarchical router on the same
  instance (Lemma 5.2: ``O(B log n)``), and the boundary congestion ``B``
  of ``Π_A``.

Expected shape: forced congestion grows linearly in ``l`` while the
randomized router's congestion grows like ``B log n`` — the widening gap is
exactly the paper's argument that ``Ω(...)`` random bits are unavoidable.
"""

from __future__ import annotations

import numpy as np

from common import main_print

from repro.core.path_selection import HierarchicalRouter
from repro.mesh.mesh import Mesh
from repro.metrics.bounds import boundary_congestion
from repro.routing.baselines import DimensionOrderRouter
from repro.workloads.adversarial import adversarial_for_router


def run_experiment(m: int = 32, ls=(2, 4, 8, 16)) -> list[dict]:
    mesh = Mesh((m, m))
    det = DimensionOrderRouter()
    ours = HierarchicalRouter()
    rows = []
    for l in ls:
        sub, _ = adversarial_for_router(det, mesh, l)
        forced = det.route(sub, seed=0).congestion
        randomized = int(
            np.mean([ours.route(sub, seed=s).congestion for s in range(3)])
        )
        b = boundary_congestion(mesh, sub.sources, sub.dests)
        rows.append(
            {
                "l": l,
                "|Pi_A|": sub.num_packets,
                "forced_C(det)": forced,
                "C(hierarchical)": randomized,
                "B(Pi_A)": b,
                "l/d": l / mesh.d,
                "log2n": float(np.log2(mesh.n)),
            }
        )
    return rows


def run_kappa_experiment(
    m: int = 32, l: int = 16, ks=(1, 2, 4, 16, 64), trials: int = 5
) -> list[dict]:
    """Lemma 5.1 sweep: hot-edge congestion of κ-choice routers on Π_A.

    The instance is built once against the κ = 1 restriction of the
    hierarchical router; then κ grows and the expected hot-edge load falls
    like ``|Π_A| / κ`` (until the fully-random floor).
    """
    from repro.routing.kchoice import KChoiceRouter

    mesh = Mesh((m, m))
    base = HierarchicalRouter()
    det = KChoiceRouter(base, 1)
    pi_a, hot_edge = adversarial_for_router(det, mesh, l)
    rows = []
    for k in ks:
        router = KChoiceRouter(base, k)
        hot = np.mean(
            [router.route(pi_a, seed=s).edge_loads[hot_edge] for s in range(trials)]
        )
        total = np.mean(
            [router.route(pi_a, seed=s).congestion for s in range(trials)]
        )
        rows.append(
            {
                "kappa": k,
                "bits=log2(k)": float(np.log2(k)),
                "|Pi_A|": pi_a.num_packets,
                "hot_edge_load": float(hot),
                "lemma51_floor |Pi_A|/k": pi_a.num_packets / k,
                "C": float(total),
            }
        )
    return rows


def test_lemma_5_1_kappa_sweep(benchmark):
    rows = benchmark.pedantic(
        run_kappa_experiment, args=(16, 8, (1, 4, 16), 4), rounds=1, iterations=1
    )
    # Lemma 5.1: expected hot-edge load >= |Pi_A| / k.
    for row in rows:
        assert row["hot_edge_load"] >= row["lemma51_floor |Pi_A|/k"] - 1e-9
    # k = 1 saturates, larger k relieves the hot edge
    assert rows[0]["hot_edge_load"] == rows[0]["|Pi_A|"]
    assert rows[-1]["hot_edge_load"] < rows[0]["hot_edge_load"]


def test_section_5_1(benchmark):
    rows = benchmark.pedantic(run_experiment, args=(32, (2, 8, 16)), rounds=1, iterations=1)
    for row in rows:
        # Lemma 5.1 construction: the deterministic router is forced to
        # congestion |Pi_A| >= l / d.
        assert row["forced_C(det)"] == row["|Pi_A|"]
        assert row["|Pi_A|"] >= row["l/d"]
    forced = [r["forced_C(det)"] for r in rows]
    assert forced == sorted(forced) and forced[-1] > forced[0]
    # the randomized router beats the forced congestion at large l
    last = rows[-1]
    assert last["C(hierarchical)"] < last["forced_C(det)"]


def test_adversarial_construction_throughput(benchmark):
    mesh = Mesh((16, 16))
    det = DimensionOrderRouter()
    sub, _ = benchmark(adversarial_for_router, det, mesh, 4)
    assert sub.num_packets >= 2


if __name__ == "__main__":
    main_print(run_experiment, "T6 / Section 5.1: forced congestion of deterministic routing")
