"""Experiment A3 — ablation: multishift vs the "direct generalization".

Section 4 opens: "The 2-dimensional decomposition can be directly
generalized to a d-dimensional mesh ... However, the stretch becomes
O(2^d), which is excessively high for large d" — motivating the Theta(d)
shifted types with ``λ = m_l / 2^ceil(log2(d+1))``.

This ablation runs the general router over both decompositions:

* on *random* traffic the two coincide almost always (the multishift
  offsets are a superset of {0, m_l/2} and random spans rarely hit the
  discriminating window) — reported as the fraction of differing paths;
* on the *scheme-separating* adversarial family (dim 0 straddles the
  central cut, dim i straddles the half-shift grid at level i) the
  half-shift scheme's meeting height rises by Theta(d) and its stretch
  roughly doubles per extra level, while multishift stays at the Lemma-4.1
  height.
"""

from __future__ import annotations

import numpy as np

from common import main_print

from repro.core.path_selection import HierarchicalRouter
from repro.mesh.mesh import Mesh
from repro.workloads.adversarial import scheme_separating_pairs


def run_experiment(configs=((3, 32), (4, 32))) -> list[dict]:
    from repro.workloads.permutations import random_permutation

    rows = []
    for d, m in configs:
        mesh = Mesh((m,) * d)
        problems = [
            random_permutation(mesh, seed=d).subproblem(range(0, mesh.n, max(mesh.n // 512, 1))),
            scheme_separating_pairs(mesh),
        ]
        for prob in problems:
            per_scheme = {}
            for scheme in ("paper2d", "multishift"):
                router = HierarchicalRouter(scheme=scheme, variant="general")
                res = router.route(prob, seed=0)
                per_scheme[scheme] = res
            half, multi = per_scheme["paper2d"], per_scheme["multishift"]
            rows.append(
                {
                    "d": d,
                    "workload": prob.name,
                    "packets": prob.num_packets,
                    "halfshift_stretch": half.stretch,
                    "multishift_stretch": multi.stretch,
                    "halfshift_D": half.dilation,
                    "multishift_D": multi.dilation,
                    "stretch_gap": half.stretch / max(multi.stretch, 1e-9),
                }
            )
    return rows


def test_multishift_beats_halfshift_on_adversarial(benchmark):
    rows = benchmark.pedantic(
        run_experiment, args=(((3, 32), (4, 32)),), rounds=1, iterations=1
    )
    adversarial = [r for r in rows if r["workload"] == "scheme-separating"]
    for row in adversarial:
        assert row["halfshift_stretch"] > 1.5 * row["multishift_stretch"], row
    # the gap grows with d (the O(2^d) mechanism)
    assert adversarial[-1]["halfshift_D"] >= adversarial[0]["halfshift_D"]
    # on random traffic the schemes are near-identical
    random_rows = [r for r in rows if r["workload"] != "scheme-separating"]
    for row in random_rows:
        assert row["stretch_gap"] < 1.5


if __name__ == "__main__":
    main_print(run_experiment, "A3 / ablation: multishift vs direct (half-shift) generalization")
