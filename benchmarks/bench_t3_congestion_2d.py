"""Experiment T3 — Theorem 3.9: 2-D congestion O(C* log n) whp.

Routes the standard permutation workloads with the hierarchical router and
every oblivious baseline, reporting congestion, the C* lower bound
(boundary congestion / average load), their ratio, and stretch.

Expected shape (the paper's comparison story):
* hierarchical: ratio O(log n), stretch <= 64 — both controlled;
* deterministic XY: stretch 1 but a workload (corner-turn) with ratio
  Theta(m);
* Valiant & access tree: good ratios, unbounded stretch on local traffic;
* offline greedy: the non-oblivious reference the log-factor is paid
  against.
"""

from __future__ import annotations

import numpy as np

from common import main_print

from repro.analysis.experiments import sweep
from repro.analysis.theory import congestion_bound_2d
from repro.core.path_selection import HierarchicalRouter
from repro.mesh.mesh import Mesh
from repro.routing.base import RoutingProblem
from repro.routing.baselines import (
    AccessTreeRouter,
    DimensionOrderRouter,
    GreedyMinCongestionRouter,
    RandomDimOrderRouter,
    ValiantRouter,
)


def _corner_turn(mesh: Mesh) -> RoutingProblem:
    m = mesh.sides[0]
    sources = np.asarray([mesh.node(i, 0) for i in range(1, m)])
    dests = np.asarray([mesh.node(0, i) for i in range(1, m)])
    return RoutingProblem(mesh, sources, dests, "corner-turn")


def _workloads(mesh: Mesh) -> list[RoutingProblem]:
    from repro.workloads.generators import nearest_neighbor
    from repro.workloads.permutations import (
        bit_complement,
        random_permutation,
        transpose,
    )

    return [
        transpose(mesh),
        bit_complement(mesh),
        random_permutation(mesh, seed=7),
        nearest_neighbor(mesh, seed=7),
        _corner_turn(mesh),
    ]


def _routers():
    return [
        HierarchicalRouter(),
        AccessTreeRouter(),
        DimensionOrderRouter(),
        RandomDimOrderRouter(),
        ValiantRouter(),
        GreedyMinCongestionRouter(),
    ]


def run_experiment(m: int = 16, seeds=(0, 1)) -> list[dict]:
    mesh = Mesh((m, m))
    rows = sweep(_routers(), _workloads(mesh), seeds=seeds)
    for row in rows:
        row["log2n"] = float(np.log2(mesh.n))
    return rows


def test_theorem_3_9(benchmark):
    rows = benchmark.pedantic(run_experiment, args=(16, (0,)), rounds=1, iterations=1)
    ours = [r for r in rows if r["router"] == "hierarchical"]
    for row in ours:
        # Lemma 3.8 ceiling with the measured lower bound in place of C*.
        ceiling = congestion_bound_2d(row["C_lower"], 2 * 15)
        assert row["C"] <= ceiling, row
        assert row["stretch"] <= 64
    # deterministic XY collapses on corner-turn traffic
    xy = {r["workload"]: r for r in rows if r["router"] == "dim-order"}
    hier = {r["workload"]: r for r in ours}
    assert xy["corner-turn"]["C_ratio"] > 2 * hier["corner-turn"]["C_ratio"]


def test_route_transpose_32_throughput(benchmark):
    mesh = Mesh((32, 32))
    from repro.workloads.permutations import transpose

    prob = transpose(mesh)
    router = HierarchicalRouter()
    result = benchmark(router.route, prob, 0)
    assert result.congestion > 0


if __name__ == "__main__":
    main_print(run_experiment, "T3 / Theorem 3.9: 2-D congestion vs C* lower bound")
