"""Experiment T9 — the batched routing engine: where the time goes.

Not a paper figure: this is the engineering experiment behind the
production north star ("route heavy traffic as fast as the hardware
allows").  It measures the three ``route()`` execution modes on the same
problem and seed —

* ``batch``  — vectorised engine (sequence tables + array assembly);
* ``loop``   — engine plan, scalar assembly (the byte-identical reference);
* ``legacy`` — the original per-packet spawned-stream loop;

— reports the per-stage profile of the batch path (sequence / draw /
assemble), and quantifies the shared-decomposition cache by routing with
the cache disabled.  The qualitative claims asserted here:

* batch and loop produce byte-identical paths (the engine's contract);
* batch is at least several times faster than legacy at default sizes;
* a warm cache makes the sequence stage cheaper than a cold one.
"""

from __future__ import annotations

import time

import numpy as np

from common import main_print

from repro import cache
from repro.core.path_selection import HierarchicalRouter
from repro.mesh.mesh import Mesh
from repro.obs import Profiler
from repro.workloads.permutations import transpose


def _time(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_experiment(m: int = 32, seed: int = 0) -> list[dict]:
    mesh = Mesh((m, m))
    problem = transpose(mesh)
    profiler = Profiler()
    router = HierarchicalRouter(profiler=profiler)

    cache.invalidate()
    cold = _time(lambda: router.route(problem, seed=seed), repeats=1)
    warm = _time(lambda: router.route(problem, seed=seed))
    loop = _time(lambda: router.route(problem, seed=seed, batch="loop"))
    legacy = _time(lambda: router.route(problem, seed=seed, batch=False))

    rows = [
        {"mode": "batch (cold cache)", "wall_s": round(cold, 4), "vs_batch": round(cold / warm, 1)},
        {"mode": "batch (warm cache)", "wall_s": round(warm, 4), "vs_batch": 1.0},
        {"mode": "loop reference", "wall_s": round(loop, 4), "vs_batch": round(loop / warm, 1)},
        {"mode": "legacy per-packet", "wall_s": round(legacy, 4), "vs_batch": round(legacy / warm, 1)},
    ]
    profiler.reset()
    router.route(problem, seed=seed)
    for r in profiler.stage_rows():
        rows.append(
            {
                "mode": f"stage: {r['stage']}",
                "wall_s": round(r["wall_s"], 4),
                "vs_batch": round(r["share"], 2),
            }
        )
    # byte-identity of the two engine assemblies, asserted on every run
    pa = router.route(problem, seed=seed).paths
    pl = router.route(problem, seed=seed, batch="loop").paths
    assert all(a.tobytes() == b.tobytes() for a, b in zip(pa, pl))
    return rows


def test_t9_batch_loop_identical():
    mesh = Mesh((16, 16))
    problem = transpose(mesh)
    router = HierarchicalRouter()
    pa = router.route(problem, seed=3).paths
    pl = router.route(problem, seed=3, batch="loop").paths
    assert all(a.tobytes() == b.tobytes() for a, b in zip(pa, pl))


def test_t9_batch_beats_legacy():
    mesh = Mesh((32, 32))
    problem = transpose(mesh)
    router = HierarchicalRouter()
    router.route(problem, seed=0)  # warm the cache
    batch = _time(lambda: router.route(problem, seed=0))
    legacy = _time(lambda: router.route(problem, seed=0, batch=False), repeats=1)
    assert legacy / batch > 3.0, f"batch speedup only {legacy / batch:.1f}x"


def test_t9_cache_hits_accumulate():
    mesh = Mesh((16, 16))
    problem = transpose(mesh)
    cache.invalidate()
    cache.reset_stats()
    HierarchicalRouter().route(problem, seed=0)
    HierarchicalRouter().route(problem, seed=1)  # second instance: all hits
    st = cache.stats()
    assert st.hits >= 1 and st.entries >= 2


if __name__ == "__main__":
    main_print(run_experiment, "T9: batched engine profile (32x32 transpose)")
