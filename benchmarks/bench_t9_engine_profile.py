"""Experiment T9 — the batched routing engine: where the time goes.

Not a paper figure: this is the engineering experiment behind the
production north star ("route heavy traffic as fast as the hardware
allows").  It measures the three ``route()`` execution modes on the same
problem and seed —

* ``batch``  — vectorised engine (sequence tables + array assembly);
* ``loop``   — engine plan, scalar assembly (the byte-identical reference);
* ``legacy`` — the original per-packet spawned-stream loop;

— reports the per-stage profile of the batch path (sequence / draw /
assemble), and quantifies the shared-decomposition cache by routing with
the cache disabled.  The qualitative claims asserted here:

* batch and loop produce byte-identical paths (the engine's contract);
* batch is at least several times faster than legacy at default sizes;
* a warm cache makes the sequence stage cheaper than a cold one.

``run_metrics_experiment`` times the *metrics* stage: the columnar
``PathSet`` passes (``congestion`` / ``node_loads`` / ``stretches``)
against the pre-PathSet list-of-arrays implementations, kept below as the
baseline.  The contract recorded here: every metric is at least 5x faster
on a 100k-packet 64x64 workload.

``run_kernels_experiment`` is the kernels-on/off A/B table (PR 6): one
full-route row per available backend (``repro.kernels``), plus a
stage-level A/B of the dominant assembly pass — the loop-erasure kernel
against the seed-era per-path ``remove_cycles`` Python loop, kept below
verbatim.  Outputs are asserted byte-identical before any time is
reported.
"""

from __future__ import annotations

import time

import numpy as np

from common import main_print

from repro import cache, kernels
from repro.core.path_selection import HierarchicalRouter
from repro.core.pathset import PathSet
from repro.mesh.mesh import Mesh
from repro.mesh.paths import remove_cycles
from repro.metrics.congestion import edge_loads, node_loads
from repro.metrics.stretch import stretches
from repro.obs import Profiler
from repro.workloads.generators import random_pairs
from repro.workloads.permutations import transpose


def _time(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_experiment(m: int = 32, seed: int = 0) -> list[dict]:
    mesh = Mesh((m, m))
    problem = transpose(mesh)
    profiler = Profiler()
    router = HierarchicalRouter(profiler=profiler)

    cache.invalidate()
    cold = _time(lambda: router.route(problem, seed=seed), repeats=1)
    warm = _time(lambda: router.route(problem, seed=seed))
    loop = _time(lambda: router.route(problem, seed=seed, batch="loop"))
    legacy = _time(lambda: router.route(problem, seed=seed, batch=False))

    rows = [
        {"mode": "batch (cold cache)", "wall_s": round(cold, 4), "vs_batch": round(cold / warm, 1)},
        {"mode": "batch (warm cache)", "wall_s": round(warm, 4), "vs_batch": 1.0},
        {"mode": "loop reference", "wall_s": round(loop, 4), "vs_batch": round(loop / warm, 1)},
        {"mode": "legacy per-packet", "wall_s": round(legacy, 4), "vs_batch": round(legacy / warm, 1)},
    ]
    profiler.reset()
    router.route(problem, seed=seed)
    for r in profiler.stage_rows():
        rows.append(
            {
                "mode": f"stage: {r['stage']}",
                "wall_s": round(r["wall_s"], 4),
                "vs_batch": round(r["share"], 2),
            }
        )
    # byte-identity of the two engine assemblies, asserted on every run
    pa = router.route(problem, seed=seed).paths
    pl = router.route(problem, seed=seed, batch="loop").paths
    assert all(a.tobytes() == b.tobytes() for a, b in zip(pa, pl))
    return rows


# ---------------------------------------------------------------------------
# Metrics stage: columnar PathSet passes vs the list-of-arrays baseline.
# The baselines below are the seed's metric implementations, kept verbatim
# so the speedup is measured against real history, not a strawman.
# ---------------------------------------------------------------------------

def _baseline_edge_loads(mesh, paths):
    from repro.mesh.paths import path_edge_endpoints

    tails_parts, heads_parts = [], []
    for p in paths:
        p = np.asarray(p, dtype=np.int64)
        if p.size < 2:
            continue
        t, h = path_edge_endpoints(p)
        tails_parts.append(t)
        heads_parts.append(h)
    if not tails_parts:
        return np.zeros(mesh.num_edges, dtype=np.int64)
    ids = mesh.edge_ids(np.concatenate(tails_parts), np.concatenate(heads_parts))
    return np.bincount(ids, minlength=mesh.num_edges).astype(np.int64)


def _baseline_node_loads(mesh, paths):
    counts = np.zeros(mesh.n, dtype=np.int64)
    for p in paths:
        p = np.asarray(p, dtype=np.int64)
        if p.size:
            counts += np.bincount(np.unique(p), minlength=mesh.n)
    return counts


def _baseline_stretches(mesh, sources, dests, paths):
    from repro.mesh.paths import path_length

    lengths = np.asarray([path_length(p) for p in paths], dtype=np.float64)
    dists = np.asarray(mesh.distance(sources, dests), dtype=np.float64)
    out = np.full(sources.size, np.nan)
    nonzero = dists > 0
    out[nonzero] = lengths[nonzero] / dists[nonzero]
    return out


def run_metrics_experiment(
    m: int = 64, packets: int = 100_000, seed: int = 0
) -> list[dict]:
    """Time each metric on one routed workload, columnar vs list baseline."""
    mesh = Mesh((m, m))
    problem = random_pairs(mesh, packets, seed=seed)
    result = HierarchicalRouter().route(problem, seed=seed)
    ps = result.paths
    as_list = ps.to_list()

    pairs = [
        (
            "congestion (edge_loads)",
            lambda: edge_loads(mesh, ps),
            lambda: _baseline_edge_loads(mesh, as_list),
        ),
        (
            "node_loads",
            lambda: node_loads(mesh, ps),
            lambda: _baseline_node_loads(mesh, as_list),
        ),
        (
            "stretch (stretches)",
            lambda: stretches(mesh, problem.sources, problem.dests, ps),
            lambda: _baseline_stretches(
                mesh, problem.sources, problem.dests, as_list
            ),
        ),
    ]
    rows = []
    total_ps = total_list = 0.0
    for name, columnar, baseline in pairs:
        ref_val = baseline()
        np.testing.assert_allclose(np.asarray(columnar(), dtype=np.float64), ref_val)
        t_ps = _time(columnar)
        t_list = _time(baseline, repeats=1 if m >= 64 else 2)
        total_ps += t_ps
        total_list += t_list
        rows.append(
            {
                "metric": name,
                "list_s": round(t_list, 4),
                "pathset_s": round(t_ps, 4),
                "speedup": round(t_list / t_ps, 1),
            }
        )
    rows.append(
        {
            "metric": "all three (metrics stage)",
            "list_s": round(total_list, 4),
            "pathset_s": round(total_ps, 4),
            "speedup": round(total_list / total_ps, 1),
        }
    )
    return rows


# ---------------------------------------------------------------------------
# Kernels A/B: route per backend, plus the decycle stage vs the seed-era
# per-path Python loop (kept verbatim — real history, not a strawman).
# ---------------------------------------------------------------------------

def _seed_decycle_baseline(mesh_n, nodes, starts, lens):
    """The PR-4 engine's cycle handling: sorted-key dup scan, then
    per-path ``remove_cycles`` over ``np.split`` segments."""
    N = starts.size
    seg_id = np.repeat(np.arange(N, dtype=np.int64), lens)
    keys = np.sort(seg_id * mesh_n + nodes)
    dup = keys[1:] == keys[:-1]
    parts = np.split(nodes, starts[1:])
    if dup.any():
        dup_segs = np.unique(keys[1:][dup] // mesh_n)
        for i in dup_segs.tolist():
            parts[i] = remove_cycles(parts[i])
    return PathSet.from_paths(parts)


def _cyclic_assembly(m, packets, seed):
    """The raw (pre-decycle) assembled node buffer of one routed workload."""
    from repro.core.randomness import resolve_entropy
    from repro.routing.engine import build_waypoints, draw_plan, resolve_orders

    mesh = Mesh((m, m))
    problem = random_pairs(mesh, packets, seed=seed)
    router = HierarchicalRouter()
    spec = router.batch_spec(problem)
    U_way, U_ord = draw_plan(resolve_entropy(seed), spec)
    W = build_waypoints(spec, U_way)
    orders = resolve_orders(spec, U_ord)
    deltas = np.diff(W, axis=1)
    ordered = np.take_along_axis(deltas, orders, axis=2)
    counts = np.abs(ordered)
    values = np.sign(ordered) * mesh.strides[orders]
    lens = counts.sum(axis=(1, 2)) + 1
    starts = np.zeros(lens.size, dtype=np.int64)
    np.cumsum(lens[:-1], out=starts[1:])
    total = int(lens.sum())
    flat_s = spec.coords_s @ mesh.strides
    nodes = kernels.assemble_paths(
        values.reshape(-1), counts.reshape(-1), flat_s, lens, starts, total
    )
    offsets = np.concatenate((starts, np.asarray([total], dtype=np.int64)))
    return mesh, problem, nodes, offsets, starts, lens


def run_kernels_experiment(
    m: int = 64, packets: int = 200_000, seed: int = 0
) -> list[dict]:
    mesh, problem, nodes, offsets, starts, lens = _cyclic_assembly(m, packets, seed)
    router = HierarchicalRouter()
    router.route(problem, seed=seed)  # warm cache + JIT (if numba)

    rows = []
    base_digest = None
    for backend in kernels.available_backends():
        with kernels.use_backend(backend):
            wall = _time(lambda: router.route(problem, seed=seed))
            ps = router.route(problem, seed=seed).paths
        digest = ps.nodes.tobytes() + ps.offsets.tobytes()
        if base_digest is None:
            base_digest = digest
        assert digest == base_digest, f"backend {backend} changed the bytes"
        rows.append(
            {
                "run": f"route [kernels={backend}]",
                "wall_s": round(wall, 4),
                "pkts/s": int(packets / wall),
            }
        )

    want = _seed_decycle_baseline(mesh.n, nodes, offsets[:-1], lens)
    for backend in kernels.available_backends():
        with kernels.use_backend(backend):
            out_nodes, out_offsets, _ = kernels.decycle_paths(nodes, offsets)
            assert out_nodes.tobytes() == want.nodes.tobytes()
            assert out_offsets.tobytes() == want.offsets.tobytes()
            wall = _time(lambda: kernels.decycle_paths(nodes, offsets))
        rows.append(
            {
                "run": f"decycle stage [kernels={backend}]",
                "wall_s": round(wall, 4),
                "pkts/s": int(packets / wall),
            }
        )
    seed_wall = _time(
        lambda: _seed_decycle_baseline(mesh.n, nodes, offsets[:-1], lens),
        repeats=1,
    )
    rows.append(
        {
            "run": "decycle stage [seed-era per-path loop]",
            "wall_s": round(seed_wall, 4),
            "pkts/s": int(packets / seed_wall),
        }
    )
    return rows


def test_t9_batch_loop_identical():
    mesh = Mesh((16, 16))
    problem = transpose(mesh)
    router = HierarchicalRouter()
    pa = router.route(problem, seed=3).paths
    pl = router.route(problem, seed=3, batch="loop").paths
    assert all(a.tobytes() == b.tobytes() for a, b in zip(pa, pl))


def test_t9_batch_beats_legacy():
    mesh = Mesh((32, 32))
    problem = transpose(mesh)
    router = HierarchicalRouter()
    router.route(problem, seed=0)  # warm the cache
    batch = _time(lambda: router.route(problem, seed=0))
    legacy = _time(lambda: router.route(problem, seed=0, batch=False), repeats=1)
    assert legacy / batch > 3.0, f"batch speedup only {legacy / batch:.1f}x"


def test_t9_metrics_columnar_speedup():
    # Reduced workload for pytest; the full 100k-packet 64x64 run (where
    # the contract is >= 5x per metric) is run_metrics_experiment's default.
    rows = run_metrics_experiment(m=32, packets=20_000)
    for row in rows:
        assert row["speedup"] >= 3.0, f"{row['metric']}: only {row['speedup']}x"


def test_t9_kernels_ab_byte_identical():
    # Reduced workload for pytest; the full 200k-packet 64x64 A/B is
    # run_kernels_experiment's default.  The byte-identity asserts inside
    # are the test — any backend divergence raises.
    rows = run_kernels_experiment(m=16, packets=2_000)
    assert any(r["run"].startswith("route [kernels=") for r in rows)
    assert any("seed-era" in r["run"] for r in rows)


def test_t9_cache_hits_accumulate():
    mesh = Mesh((16, 16))
    problem = transpose(mesh)
    cache.invalidate()
    cache.reset_stats()
    HierarchicalRouter().route(problem, seed=0)
    HierarchicalRouter().route(problem, seed=1)  # second instance: all hits
    st = cache.stats()
    assert st.hits >= 1 and st.entries >= 2


if __name__ == "__main__":
    main_print(run_experiment, "T9: batched engine profile (32x32 transpose)")
    main_print(
        run_metrics_experiment,
        "T9: metrics stage, PathSet vs list baseline (100k packets, 64x64)",
    )
    main_print(
        run_kernels_experiment,
        "T9: kernels A/B, route + decycle stage per backend vs seed-era "
        "loop (200k packets, 64x64)",
    )
