"""Experiment T11 — sharded routing: scaling without changing a byte.

Not a paper figure: this is the engineering experiment behind the sharded
multiprocess engine (``Router.route(workers=N)``).  Oblivious routing is
embarrassingly parallel — packet *i*'s path depends only on ``(seed, i,
s_i, t_i)`` (the paper's Section 1 definition of obliviousness) — so the
batch splits into contiguous shards, each worker routes its slice with
per-packet streams keyed by *global* packet index, and the merged CSR is
byte-identical to the serial run for every worker count.

The experiment routes one large random-pairs workload at several worker
counts and reports wall time, speedup over ``workers=1``, and a sha256
over the merged path bytes — the hash column must be constant down the
table, which is asserted on every run.

Caveat recorded with the table: on a single-CPU host the process pool
adds fork/pickle overhead and cannot speed anything up; the speedup
column measures hardware, the hash column measures correctness.  Only the
latter is asserted here.
"""

from __future__ import annotations

import hashlib
import os
import time

from common import main_print

from repro import cache, kernels
from repro.core.path_selection import HierarchicalRouter
from repro.mesh.mesh import Mesh
from repro.workloads.generators import random_pairs


def path_bytes_digest(paths) -> str:
    """sha256 over the CSR arrays — the byte-identity witness."""
    h = hashlib.sha256()
    h.update(paths.nodes.tobytes())
    h.update(paths.offsets.tobytes())
    return h.hexdigest()


def run_experiment(
    m: int = 64,
    packets: int = 1_000_000,
    worker_counts: tuple[int, ...] = (1, 2, 4),
    seed: int = 0,
) -> list[dict]:
    mesh = Mesh((m, m))
    problem = random_pairs(mesh, packets, seed=seed)
    router = HierarchicalRouter()
    cache.warm([cache.warmup_key(mesh, router.scheme)])

    rows = []
    base_time = None
    base_digest = None
    for w in worker_counts:
        t0 = time.perf_counter()
        result = router.route(problem, seed=seed, workers=w)
        wall = time.perf_counter() - t0
        digest = path_bytes_digest(result.paths)
        if base_time is None:
            base_time, base_digest = wall, digest
        assert digest == base_digest, f"workers={w} diverged from workers=1"
        rows.append(
            {
                "workers": w,
                "backend": kernels.backend(),
                "wall_s": round(wall, 3),
                "speedup": round(base_time / wall, 2),
                "sha256[:12]": digest[:12],
            }
        )
    rows.append(
        {
            "workers": f"(host: {os.cpu_count()} cpu)",
            "backend": "",
            "wall_s": "",
            "speedup": "",
            "sha256[:12]": "identical" if len({r["sha256[:12]"] for r in rows}) == 1 else "DIVERGED",
        }
    )
    return rows


def test_t11_hashes_identical_across_workers():
    rows = run_experiment(m=16, packets=2_000, worker_counts=(1, 2, 3))
    digests = {r["sha256[:12]"] for r in rows if isinstance(r["workers"], int)}
    assert len(digests) == 1


def test_t11_pool_runs_all_shards():
    mesh = Mesh((8, 8))
    problem = random_pairs(mesh, 101, seed=5)
    result = HierarchicalRouter().route(problem, seed=5, workers=4)
    assert len(result.paths) == 101
    assert result.validate()


if __name__ == "__main__":
    main_print(
        run_experiment,
        "T11: parallel scaling, 1M packets on 64x64 (byte-identity asserted)",
    )
