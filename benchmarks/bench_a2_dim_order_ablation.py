"""Experiment A2 — ablation: randomized dimension ordering.

The paper notes its randomized dimension-by-dimension routing "alone can
improve the result in [9] by a factor of d".  This experiment compares the
hierarchical router with ``dim_order`` fixed / shared / random on
congestion-sensitive workloads in 2-D and 3-D.

Expected shape: fixed ordering concentrates subpaths on the lexicographic
staircase and pays higher congestion; the shared (one random order per
path) mode recovers most of the gain of fully random per-subpath orders.
"""

from __future__ import annotations

import numpy as np

from common import main_print

from repro.core.path_selection import HierarchicalRouter
from repro.mesh.mesh import Mesh
from repro.routing.base import RoutingProblem


def _corner_turn(mesh: Mesh) -> RoutingProblem:
    m = mesh.sides[0]
    sources = np.asarray([mesh.node(*([i] + [0] * (mesh.d - 1))) for i in range(1, m)])
    dests = np.asarray([mesh.node(*([0] * (mesh.d - 1) + [i])) for i in range(1, m)])
    return RoutingProblem(mesh, sources, dests, "corner-turn")


def run_experiment(seeds=(0, 1, 2)) -> list[dict]:
    from repro.workloads.permutations import bit_complement, random_permutation

    rows = []
    for d, m in ((2, 32), (3, 8)):
        mesh = Mesh((m,) * d)
        workloads = [
            random_permutation(mesh, seed=1),
            bit_complement(mesh),
            _corner_turn(mesh),
        ]
        for mode in ("fixed", "shared", "random"):
            router = HierarchicalRouter(dim_order=mode, name=f"hier-{mode}")
            for prob in workloads:
                cs = [router.route(prob, seed=s).congestion for s in seeds]
                rows.append(
                    {
                        "d": d,
                        "workload": prob.name,
                        "dim_order": mode,
                        "C_mean": float(np.mean(cs)),
                        "C_max": int(np.max(cs)),
                    }
                )
    return rows


def test_random_order_helps(benchmark):
    rows = benchmark.pedantic(run_experiment, args=((0, 1),), rounds=1, iterations=1)
    by_key = {(r["d"], r["workload"], r["dim_order"]): r["C_mean"] for r in rows}
    # On corner-turn traffic the fixed order concentrates load.
    for d in (2, 3):
        fixed = by_key[(d, "corner-turn", "fixed")]
        rand = by_key[(d, "corner-turn", "random")]
        assert rand <= fixed
    # Random never catastrophically worse anywhere (within 2x + slack).
    for d, wl in {(r["d"], r["workload"]) for r in rows}:
        assert by_key[(d, wl, "random")] <= 2 * by_key[(d, wl, "fixed")] + 4


if __name__ == "__main__":
    main_print(run_experiment, "A2 / ablation: dimension-order randomization")
