"""Experiment X4 (extension) — scaling: the log-n shape and runtime.

Theorem 3.9's ``O(C* log n)`` is a *growth* statement; T3 checks one size.
This experiment sweeps mesh sizes and reports the congestion ratio against
``log2 n``: the ratio divided by ``log2 n`` should be (roughly) flat, and
certainly far from linear growth in the side length ``m``.

It also times path selection per packet across sizes — the arithmetic
ancestor/bridge machinery is O(log n) per path with no per-mesh
enumeration, so per-path cost grows only logarithmically.
"""

from __future__ import annotations

import time

import numpy as np

from common import main_print

from repro.core.path_selection import HierarchicalRouter
from repro.mesh.mesh import Mesh
from repro.metrics.bounds import average_load_lower_bound, boundary_congestion


def run_experiment(sizes=(8, 16, 32, 64), seeds=(0, 1)) -> list[dict]:
    from repro.workloads.permutations import random_permutation, transpose

    rows = []
    for m in sizes:
        mesh = Mesh((m, m))
        router = HierarchicalRouter()
        for prob in (transpose(mesh), random_permutation(mesh, seed=m)):
            bound = max(
                boundary_congestion(mesh, prob.sources, prob.dests),
                average_load_lower_bound(mesh, prob.sources, prob.dests),
                1.0,
            )
            cs = []
            t0 = time.perf_counter()
            for seed in seeds:
                cs.append(router.route(prob, seed=seed).congestion)
            elapsed = (time.perf_counter() - t0) / (len(seeds) * prob.num_packets)
            ratio = float(np.mean(cs)) / bound
            rows.append(
                {
                    "m": m,
                    "n": mesh.n,
                    "workload": prob.name,
                    "C_mean": float(np.mean(cs)),
                    "C_lower": bound,
                    "ratio": ratio,
                    "ratio/log2n": ratio / np.log2(mesh.n),
                    "us_per_path": elapsed * 1e6,
                }
            )
    return rows


def test_log_n_shape(benchmark):
    rows = benchmark.pedantic(
        run_experiment, args=((8, 16, 32), (0,)), rounds=1, iterations=1
    )
    # normalised ratio stays bounded as n grows 16x: the log-n shape
    normalised = {}
    for row in rows:
        normalised.setdefault(row["workload"], []).append(row["ratio/log2n"])
    for workload, vals in normalised.items():
        assert max(vals) <= 1.5, (workload, vals)
        # growth from smallest to largest size is sub-2x after normalising
        assert vals[-1] <= 2 * max(vals[0], 0.25), (workload, vals)


def test_path_selection_scales(benchmark):
    """Per-path selection cost on a 128x128 mesh stays microseconds-scale
    (no enumeration anywhere on the routing path)."""
    mesh = Mesh((128, 128))
    router = HierarchicalRouter()
    rng = np.random.default_rng(0)
    pairs = rng.integers(mesh.n, size=(200, 2))
    pairs = pairs[pairs[:, 0] != pairs[:, 1]]

    def kernel():
        rr = np.random.default_rng(1)
        return sum(len(router.select_path(mesh, int(s), int(t), rr)) for s, t in pairs)

    total = benchmark(kernel)
    assert total > 0


if __name__ == "__main__":
    main_print(run_experiment, "X4 / extension: log-n scaling of congestion ratio")
