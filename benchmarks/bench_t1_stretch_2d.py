"""Experiment T1 — Theorem 3.4: 2-D stretch is at most 64.

Sweeps mesh sizes, measuring the maximum and mean per-packet stretch of the
hierarchical router over (a) dense random pairs and (b) adversarial
boundary-straddling pairs, against the paper's hard ceiling of 64.

Expected shape: measured max stretch is a small constant (well below 64),
independent of mesh size; the access tree's stretch on the same pairs grows
linearly with the mesh side (reported for contrast).
"""

from __future__ import annotations

import numpy as np

from common import main_print

from repro.core.path_selection import HierarchicalRouter
from repro.mesh.mesh import Mesh
from repro.routing.base import RoutingProblem
from repro.routing.baselines import AccessTreeRouter


def _adversarial_pairs(mesh: Mesh) -> RoutingProblem:
    """Adjacent pairs straddling every power-of-two cut, in both axes."""
    m = mesh.sides[0]
    sources, dests = [], []
    cut = 1
    while cut < m:
        for y in range(0, m, max(m // 8, 1)):
            sources.append(mesh.node(cut - 1, y))
            dests.append(mesh.node(cut, y))
            sources.append(mesh.node(y, cut - 1))
            dests.append(mesh.node(y, cut))
        cut *= 2
    return RoutingProblem(
        mesh, np.asarray(sources), np.asarray(dests), "straddling-pairs"
    )


def run_experiment(sizes=(8, 16, 32, 64), pairs_per_mesh: int = 400) -> list[dict]:
    from repro.analysis.certificates import worst_case_stretch
    from repro.workloads.generators import random_pairs

    rows = []
    for m in sizes:
        mesh = Mesh((m, m))
        router = HierarchicalRouter()
        tree = AccessTreeRouter()
        for prob in (
            random_pairs(mesh, pairs_per_mesh, seed=m),
            _adversarial_pairs(mesh),
        ):
            res = router.route(prob, seed=1)
            tree_res = tree.route(prob, seed=1)
            vals = res.stretches[np.isfinite(res.stretches)]
            # certificate: worst case over ALL random choices for these pairs
            certified = max(
                worst_case_stretch(router, mesh, int(s), int(t))
                for s, t in prob.pairs()
                if s != t
            )
            rows.append(
                {
                    "m": m,
                    "workload": prob.name,
                    "packets": prob.num_packets,
                    "max_stretch": float(vals.max()),
                    "mean_stretch": float(vals.mean()),
                    "certified_worst": certified,
                    "bound": 64,
                    "tree_max_stretch": tree_res.stretch,
                }
            )
    return rows


def test_theorem_3_4(benchmark):
    rows = benchmark.pedantic(run_experiment, args=((8, 16, 32), 200), rounds=1, iterations=1)
    for row in rows:
        assert row["max_stretch"] <= 64
        # the certificate bounds every possible realisation, not just runs
        assert row["max_stretch"] <= row["certified_worst"] <= 64
    # tree stretch on straddling pairs grows with m; ours stays flat
    straddle = [r for r in rows if r["workload"] == "straddling-pairs"]
    assert straddle[-1]["tree_max_stretch"] > straddle[-1]["max_stretch"]
    assert straddle[-1]["tree_max_stretch"] > straddle[0]["tree_max_stretch"]


def test_path_selection_throughput_32(benchmark):
    """Kernel: select 500 paths on a 32x32 mesh."""
    mesh = Mesh((32, 32))
    router = HierarchicalRouter()
    rng = np.random.default_rng(0)
    pairs = rng.integers(mesh.n, size=(500, 2))
    pairs = pairs[pairs[:, 0] != pairs[:, 1]]

    def kernel():
        rr = np.random.default_rng(1)
        return sum(
            len(router.select_path(mesh, int(s), int(t), rr)) for s, t in pairs
        )

    assert benchmark(kernel) > 0


if __name__ == "__main__":
    main_print(run_experiment, "T1 / Theorem 3.4: 2-D stretch <= 64")
