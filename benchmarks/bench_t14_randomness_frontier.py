"""Experiment T14 — Section 5 end-to-end: the bits/congestion frontier.

Theorem 5.2 says near-optimal congestion *costs* random bits; Theorem 5.5
says algorithm ``H`` pays close to the minimum.  This experiment traces
the whole trade-off empirically with the enforced randomness budget
(`route(budget=...)`, `docs/RANDOMNESS.md`): sweeping the per-packet bit
ceiling from 0 (every packet degraded to deterministic dimension-order)
through the recycled regime (Lemma 5.4 prices) up to the unconstrained
fresh scheme, measuring planned bits actually spent, congestion and
stretch at each point.  The workload is the paper's own adversarial
construction ``Π_A`` built against deterministic dimension-order
(§5.1 averaging argument over a block exchange): every packet of ``Π_A``
shares one hot edge under the 0-bit scheme, so the congestion axis
actually moves as bits are granted.

Expected shape:

* congestion falls as the budget grows — the frontier is monotone-ish
  from the deterministic corner (high C) to the fresh corner (low C);
* bits/packet rises with the ceiling and `max_bits` never exceeds it;
* the recycled point sits between the corners on both axes;
* the compact-state router reproduces the fresh corner byte-for-byte
  while carrying only polylog bits of per-node state (reported).
"""

from __future__ import annotations

import hashlib

import numpy as np

from common import main_print

from repro.core.budget import default_budget_bits
from repro.core.compact import CompactHierarchicalRouter
from repro.core.path_selection import HierarchicalRouter
from repro.mesh.mesh import Mesh
from repro.routing.registry import make_router


def _digest(paths) -> str:
    h = hashlib.sha256()
    h.update(paths.nodes.tobytes())
    h.update(paths.offsets.tobytes())
    return h.hexdigest()[:12]


def run_experiment(
    m: int = 32, seeds=(0, 1, 2), budgets=(0, 8, 12, 16, 20, 24, 32, None)
) -> list[dict]:
    """One row per frontier point: enforced ceiling -> bits, C, stretch.

    ``budgets`` entries are per-packet bit ceilings; ``None`` is the
    default (structural-maximum) ceiling — enforcement armed, nothing
    degraded, i.e. the fresh corner.  Two reference rows bracket the
    sweep: plain dimension-order (the 0-bit baseline routed natively)
    and the recycled-bit scheme (the Lemma 5.4 point).
    """
    from repro.routing.base import RoutingProblem
    from repro.workloads.adversarial import adversarial_for_router

    mesh = Mesh((m, m))
    # Π_A at several block sizes: packets at different distances carry
    # different planned costs, so intermediate ceilings degrade only the
    # expensive (long-bridge) packets and the frontier is graded rather
    # than a single step.
    parts = [
        adversarial_for_router(make_router("dim-order"), mesh, l)[0]
        for l in (2, 4, max(4, m // 4), max(4, m // 2))
    ]
    problem = RoutingProblem(
        mesh,
        np.concatenate([p.sources for p in parts]),
        np.concatenate([p.dests for p in parts]),
        name=f"pi-A-mixed-{m}",
    )
    rows = []

    def point(label, router, budget, extra=None):
        cs, sts, bits, mxs, f_rec, f_dim = [], [], [], [], [], []
        for seed in seeds:
            res = router.route(problem, seed=seed, budget=budget)
            cs.append(res.congestion)
            sts.append(res.stretch)
            led = res.budget
            bits.append(led.bits_per_packet if led else 0.0)
            mxs.append(led.max_bits if led else 0)
            f_rec.append(led.fallbacks_recycled if led else 0)
            f_dim.append(led.fallbacks_dimorder if led else 0)
        row = {
            "point": label,
            "limit": budget if isinstance(budget, int) else default_budget_bits(mesh),
            "bits/packet": round(float(np.mean(bits)), 2),
            "max_bits": int(np.max(mxs)),
            "frac_recycled": round(float(np.mean(f_rec)) / problem.num_packets, 3),
            "frac_dimorder": round(float(np.mean(f_dim)) / problem.num_packets, 3),
            "congestion": float(np.mean(cs)),
            "stretch": round(float(np.max(sts)), 2),
        }
        row.update(extra or {})
        rows.append(row)
        return row

    for limit in budgets:
        budget = limit if limit is not None else "enforce"
        point(f"H enforce<={limit if limit is not None else 'default'}",
              HierarchicalRouter(), budget)
    # Reference corners: the schemes routed natively, metered not enforced.
    point("H recycled (Lemma 5.4)",
          HierarchicalRouter(bit_mode="recycled"), "measure")
    point("dim-order (0 bits)", make_router("dim-order"), "measure")
    # The compact-state router at the fresh corner: identical bytes from
    # polylog per-node state.
    compact = CompactHierarchicalRouter()
    crow = point("H compact state", compact, "enforce",
                 extra={"state_bits/node": compact.state_bits_per_node(mesh)})
    ref = HierarchicalRouter().route(problem, seed=seeds[0], budget="enforce")
    got = compact.route(problem, seed=seeds[0], budget="enforce")
    crow["sha12_matches_global"] = _digest(got.paths) == _digest(ref.paths)
    return rows


def test_frontier_shape(benchmark):
    rows = benchmark.pedantic(
        run_experiment, kwargs={"m": 16, "seeds": (0,), "budgets": (0, 16, None)},
        rounds=1, iterations=1,
    )
    by = {r["point"]: r for r in rows}
    zero = by["H enforce<=0"]
    mid = by["H enforce<=16"]
    free = by["H enforce<=default"]
    # the ceiling binds: max planned bits never exceed it
    assert zero["max_bits"] == 0 and mid["max_bits"] <= 16
    # bits grow with the budget
    assert zero["bits/packet"] <= mid["bits/packet"] <= free["bits/packet"]
    # Theorem 5.2's direction: the deterministic corner pays congestion
    assert zero["congestion"] >= free["congestion"]
    # the default ceiling degrades nothing
    assert free["frac_recycled"] == 0 and free["frac_dimorder"] == 0
    # compact state: identical bytes, polylog state
    crow = by["H compact state"]
    assert crow["sha12_matches_global"]
    mesh_bits = 16 * 16 * 2 * 32  # one global coordinate table, for scale
    assert 0 < crow["state_bits/node"] < mesh_bits


def test_budget_enforcement_overhead(benchmark):
    """Metering must stay cheap: enforce-mode routing of a sizable batch."""
    from repro.workloads.generators import random_pairs

    mesh = Mesh((32, 32))
    problem = random_pairs(mesh, 5_000, seed=0)
    router = HierarchicalRouter()
    result = benchmark(lambda: router.route(problem, seed=1, budget="enforce"))
    assert result.budget.fallbacks == 0


if __name__ == "__main__":
    main_print(run_experiment, "T14 / Theorems 5.2+5.5: the bits/congestion frontier")
