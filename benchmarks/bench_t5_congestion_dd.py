"""Experiment T5 — Theorem 4.3: d-dimensional congestion O(d^2 C* log n).

Routes random permutations and block exchanges across dimensions, reporting
the ratio of measured congestion to the C* lower bound against the paper's
``O(d^2 log n)`` envelope.

Expected shape: ratios grow mildly with d and n (the log factor), far below
the explicit Lemma-A.3-based envelope.
"""

from __future__ import annotations

import numpy as np

from common import main_print

from repro.analysis.theory import congestion_bound_general
from repro.core.path_selection import HierarchicalRouter
from repro.mesh.mesh import Mesh
from repro.metrics.bounds import average_load_lower_bound, boundary_congestion


def run_experiment(configs=((2, 16), (3, 8), (4, 4))) -> list[dict]:
    from repro.workloads.adversarial import block_exchange
    from repro.workloads.permutations import random_permutation

    rows = []
    for d, m in configs:
        mesh = Mesh((m,) * d)
        router = HierarchicalRouter(variant="general")
        for prob in (
            random_permutation(mesh, seed=d),
            block_exchange(mesh, max(m // 4, 1)),
        ):
            bound = max(
                boundary_congestion(mesh, prob.sources, prob.dests),
                average_load_lower_bound(mesh, prob.sources, prob.dests),
                1.0,
            )
            res = router.route(prob, seed=2)
            envelope = congestion_bound_general(bound, d, prob.max_distance)
            rows.append(
                {
                    "d": d,
                    "m": m,
                    "workload": prob.name,
                    "C": res.congestion,
                    "C_lower": bound,
                    "ratio": res.congestion / bound,
                    "envelope": envelope,
                    "log2n": float(np.log2(mesh.n)),
                }
            )
    return rows


def test_theorem_4_3(benchmark):
    rows = benchmark.pedantic(run_experiment, args=(((2, 16), (3, 8)),), rounds=1, iterations=1)
    for row in rows:
        assert row["C"] <= row["envelope"], row
        # sanity: the ratio is a small multiple of log2(n)
        assert row["ratio"] <= 4 * row["log2n"]


def test_boundary_congestion_throughput_3d(benchmark):
    from repro.workloads.permutations import random_permutation

    mesh = Mesh((16, 16, 16))
    prob = random_permutation(mesh, seed=5)
    val = benchmark(boundary_congestion, mesh, prob.sources, prob.dests)
    assert val > 0


if __name__ == "__main__":
    main_print(run_experiment, "T5 / Theorem 4.3: d-dim congestion vs C* lower bound")
