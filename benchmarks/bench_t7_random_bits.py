"""Experiment T7 — Lemma 5.4 / Theorem 5.5: random bits per packet.

Measures bits consumed per packet by the hierarchical router under the
naive ("fresh") and the paper's recycled scheme, sweeping the packet
distance ``D`` via block-exchange workloads, against the paper's curves:

* upper (Lemma 5.4): ``O(d log(D d))`` — recycled should track this shape;
* naive: ``O(d log^2(D d))`` — one fresh draw per bitonic step;
* lower (Lemma 5.3, reconstructed shape): no comparable-congestion
  algorithm can beat it.

Expected shape: recycled ~ flat multiple of ``log D``; fresh ~ ``log^2 D``;
recycled within a constant factor of the lower curve (Theorem 5.5's O(d)).
"""

from __future__ import annotations

import numpy as np

from common import main_print

from repro.analysis.theory import random_bits_lower_curve, random_bits_upper_curve
from repro.core.path_selection import HierarchicalRouter
from repro.mesh.mesh import Mesh


def run_experiment(m: int = 64, ls=(2, 4, 8, 16, 32)) -> list[dict]:
    from repro.workloads.adversarial import block_exchange

    mesh = Mesh((m, m))
    rows = []
    for l in ls:
        prob = block_exchange(mesh, l).subproblem(range(0, mesh.n, 16))
        fresh = HierarchicalRouter(bit_mode="fresh")
        fresh.route(prob, seed=0)
        recycled = HierarchicalRouter(bit_mode="recycled")
        recycled.route(prob, seed=0)
        d = mesh.d
        rows.append(
            {
                "D": l,
                "packets": prob.num_packets,
                "fresh_bits": float(np.mean(fresh.bits_log)),
                "recycled_bits": float(np.mean(recycled.bits_log)),
                "upper_dlog(Dd)": random_bits_upper_curve(d, l),
                "lower_curve": random_bits_lower_curve(d, l, mesh.n),
            }
        )
    return rows


def test_lemma_5_4(benchmark):
    rows = benchmark.pedantic(run_experiment, args=(32, (2, 8, 16)), rounds=1, iterations=1)
    for row in rows:
        assert row["recycled_bits"] < row["fresh_bits"]
        # Lemma 5.4 shape with a generous constant.
        assert row["recycled_bits"] <= 10 * row["upper_dlog(Dd)"]
        # Theorem 5.5: above the lower curve (it is a *lower* bound).
        assert row["recycled_bits"] >= row["lower_curve"]
    # bits grow with D for both modes
    rec = [r["recycled_bits"] for r in rows]
    assert rec[-1] > rec[0]


def test_recycled_routing_throughput(benchmark):
    from repro.workloads.generators import random_pairs

    mesh = Mesh((32, 32))
    prob = random_pairs(mesh, 200, seed=0)
    router = HierarchicalRouter(bit_mode="recycled")
    result = benchmark(router.route, prob, 1)
    assert result.validate()


if __name__ == "__main__":
    main_print(run_experiment, "T7 / Lemma 5.4: random bits per packet vs D")
