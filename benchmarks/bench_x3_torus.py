"""Experiment X3 (extension) — the torus model of the paper's proofs.

The paper analyses the torus ("all the type-2 meshes are of the same size")
and waves mesh border effects into "minor technical details".  This
experiment quantifies the difference:

* on the torus, all shifted submeshes are full-size and wrap — pairs
  adjacent across the wrap-around border meet at constant height;
* border traffic that costs distance ``m - 1`` on the mesh costs 1 on the
  torus, and the router's stretch stays bounded in both models;
* overall congestion/stretch on permutations is statistically similar,
  confirming the paper's claim that edge effects only perturb constants.
"""

from __future__ import annotations

import numpy as np

from common import main_print

from repro.core.path_selection import HierarchicalRouter
from repro.mesh.mesh import Mesh
from repro.metrics.bounds import average_load_lower_bound, boundary_congestion
from repro.routing.base import RoutingProblem


def _border_wrap_pairs(mesh: Mesh) -> RoutingProblem:
    m = mesh.sides[0]
    sources = np.asarray([mesh.node(0, y) for y in range(m)])
    dests = np.asarray([mesh.node(m - 1, y) for y in range(m)])
    return RoutingProblem(mesh, sources, dests, "border-wrap")


def run_experiment(m: int = 16) -> list[dict]:
    from repro.workloads.generators import nearest_neighbor
    from repro.workloads.permutations import random_permutation, tornado

    rows = []
    for torus in (False, True):
        mesh = Mesh((m, m), torus=torus)
        router = HierarchicalRouter()
        for prob in (
            random_permutation(mesh, seed=1),
            tornado(mesh),
            nearest_neighbor(mesh, seed=1),
            _border_wrap_pairs(mesh),
        ):
            bound = max(
                boundary_congestion(mesh, prob.sources, prob.dests),
                average_load_lower_bound(mesh, prob.sources, prob.dests),
                1.0,
            )
            res = router.route(prob, seed=2)
            rows.append(
                {
                    "network": "torus" if torus else "mesh",
                    "workload": prob.name,
                    "D_max_dist": prob.max_distance,
                    "C": res.congestion,
                    "C_ratio": res.congestion / bound,
                    "max_stretch": res.stretch,
                }
            )
    return rows


def test_torus_model(benchmark):
    rows = benchmark.pedantic(run_experiment, args=(16,), rounds=1, iterations=1)
    by = {(r["network"], r["workload"]): r for r in rows}
    # stretch bounded in both models on every workload
    for row in rows:
        assert row["max_stretch"] <= 64
    # border traffic: torus distance is 1, mesh distance is m-1
    assert by[("torus", "border-wrap")]["D_max_dist"] == 1
    assert by[("mesh", "border-wrap")]["D_max_dist"] == 15
    # the torus routes border-wrap traffic locally
    assert by[("torus", "border-wrap")]["C"] <= by[("mesh", "border-wrap")]["C"]


if __name__ == "__main__":
    main_print(run_experiment, "X3 / extension: torus vs mesh (the proofs' model)")
