"""Intra-doc link checker for the repository's markdown.

Scans ``README.md`` and ``docs/*.md`` for inline markdown links
(``[text](target)``) and verifies every *relative* target: the file must
exist, and when the link carries a ``#fragment`` the target file must
contain a heading whose GitHub-style slug matches.  External links
(``http(s)://``, ``mailto:``) are ignored — this gate is about the docs
not rotting against each other, not about the internet.

Run standalone (exit code 1 on any broken link)::

    python tools/check_doc_links.py

or through the tier-1 suite (``tests/test_docs_links.py``), which is how
CI fails the docs job on a broken link.
"""

from __future__ import annotations

import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: inline links; [text](target) — code spans are stripped before matching
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_CODE_SPAN_RE = re.compile(r"`[^`]*`")
_FENCE_RE = re.compile(r"^(```|~~~)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
_EXTERNAL = ("http://", "https://", "mailto:")


def doc_files(root: pathlib.Path = REPO_ROOT) -> list[pathlib.Path]:
    """The markdown set under the gate: README plus everything in docs/."""
    return [root / "README.md", *sorted((root / "docs").glob("*.md"))]


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading line (lowercase, dashes, bare)."""
    text = _CODE_SPAN_RE.sub(lambda m: m.group(0)[1:-1], heading)
    text = re.sub(r"[^\w\- ]", "", text.lower())
    return re.sub(r" ", "-", text.strip())


def heading_slugs(path: pathlib.Path) -> set[str]:
    slugs: set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = _HEADING_RE.match(line)
        if m:
            slugs.add(github_slug(m.group(1)))
    return slugs


def iter_links(path: pathlib.Path):
    """Yield (line_number, target) for every inline link outside code."""
    in_fence = False
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if _FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in _LINK_RE.finditer(_CODE_SPAN_RE.sub("", line)):
            yield lineno, m.group(1)


def broken_links(root: pathlib.Path = REPO_ROOT) -> list[str]:
    """Every broken relative link, as ``file:line: message`` strings."""
    problems: list[str] = []
    for doc in doc_files(root):
        if not doc.exists():
            problems.append(f"{doc.relative_to(root)}: file missing")
            continue
        for lineno, target in iter_links(doc):
            if target.startswith(_EXTERNAL):
                continue
            where = f"{doc.relative_to(root)}:{lineno}"
            raw, _, fragment = target.partition("#")
            dest = doc if not raw else (doc.parent / raw).resolve()
            if not dest.exists():
                problems.append(f"{where}: target does not exist: {target!r}")
                continue
            if fragment and dest.suffix == ".md":
                if fragment.lower() not in heading_slugs(dest):
                    problems.append(
                        f"{where}: no heading {fragment!r} in "
                        f"{dest.relative_to(root)}"
                    )
    return problems


def main() -> int:
    problems = broken_links()
    for problem in problems:
        print(problem, file=sys.stderr)
    checked = sum(1 for doc in doc_files() for _ in iter_links(doc))
    print(f"checked {checked} links in {len(doc_files())} files: "
          f"{len(problems)} broken")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
