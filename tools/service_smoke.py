"""CI smoke test for the routing service: boot, route, diff, audit.

Boots ``repro serve`` as a real subprocess (the CLI entry point, not the
in-process objects the unit tests use), routes a golden sample through a
``ServiceClient``, and fails loudly if:

* any routed cell's CSR hash differs from the committed golden matrix
  (``tests/golden/path_hashes.json``);
* the daemon exits non-zero or refuses a clean SIGTERM shutdown;
* the run leaves shared-memory segments in ``/dev/shm`` (the ownership
  hand-off leaked), orphaned child processes, or a stale socket.

Exit code 0 means the whole lifecycle — boot, warm pool, batched
admission, shm hand-off, teardown — worked end to end.

Usage: ``PYTHONPATH=src python tools/service_smoke.py``
"""

from __future__ import annotations

import glob
import hashlib
import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.cli import parse_mesh  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402
from repro.workloads.permutations import transpose  # noqa: E402

GOLDEN = REPO / "tests" / "golden" / "path_hashes.json"
#: golden cells routed through the live daemon: router|mesh|seed triplets
#: with a plain (un-suffixed) router name, small enough for a smoke leg
SAMPLE_MESH = "8x8"
SAMPLE_ROUTERS = ("hierarchical", "access-tree", "dim-order", "valiant")


def cell_hash(result) -> str:
    h = hashlib.sha256()
    h.update(result.paths.nodes.tobytes())
    h.update(result.paths.offsets.tobytes())
    return h.hexdigest()


def shm_segments() -> list[str]:
    return sorted(
        os.path.basename(p) for p in glob.glob("/dev/shm/repro-*")
    )


def live_descendants(pid: int) -> list[str]:
    """Children of ``pid``, excluding multiprocessing's resource tracker
    (a singleton that legitimately outlives brief windows)."""
    out = subprocess.run(
        ["ps", "--ppid", str(pid), "-o", "pid=,args="],
        capture_output=True, text=True,
    ).stdout
    return [
        line.strip()
        for line in out.splitlines()
        if line.strip() and "resource_tracker" not in line
    ]


def main() -> int:
    golden = json.loads(GOLDEN.read_text())
    mesh = parse_mesh(SAMPLE_MESH)
    label = "x".join(str(s) for s in mesh.sides)

    failures: list[str] = []
    shm_before = shm_segments()

    with tempfile.TemporaryDirectory() as tmp:
        socket_path = os.path.join(tmp, "repro.sock")
        server = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--socket", socket_path, "--workers", "2",
             "--flush-ms", "1", "--prewarm", SAMPLE_MESH],
            env={**os.environ, "PYTHONPATH": str(REPO / "src")},
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        try:
            deadline = time.monotonic() + 60
            while not os.path.exists(socket_path):
                if server.poll() is not None:
                    print(server.stdout.read())
                    print("FAIL: serve exited before binding its socket")
                    return 1
                if time.monotonic() > deadline:
                    print("FAIL: serve did not bind its socket in 60s")
                    return 1
                time.sleep(0.1)

            checked = 0
            problem = transpose(mesh)  # the golden matrix's 8x8 workload
            with ServiceClient(socket_path) as client:
                for router in SAMPLE_ROUTERS:
                    for seed in (0, 1):
                        key = f"{router}|{label}|seed={seed}"
                        if key not in golden:
                            continue
                        result = client.route(problem, router=router, seed=seed)
                        got = cell_hash(result)
                        want = golden[key]
                        if got != want:
                            failures.append(
                                f"hash mismatch {key}: {got[:12]} != {want[:12]}"
                            )
                        checked += 1
            if checked == 0:
                failures.append("no golden cells matched the sample matrix")
            print(f"routed {checked} golden cells via the service")

            orphans = live_descendants(server.pid)
            server.send_signal(signal.SIGTERM)
            try:
                code = server.wait(timeout=30)
            except subprocess.TimeoutExpired:
                server.kill()
                failures.append("serve ignored SIGTERM for 30s")
                code = server.wait()
            if code != 0:
                failures.append(f"serve exited {code} on SIGTERM")
            if os.path.exists(socket_path):
                failures.append("stale socket left after shutdown")
            for line in orphans:
                pid = int(line.split()[0])
                deadline = time.monotonic() + 10  # grace for pool teardown
                while time.monotonic() < deadline:
                    try:
                        os.kill(pid, 0)
                    except ProcessLookupError:
                        break
                    time.sleep(0.2)
                else:
                    failures.append(f"orphaned child survived shutdown: {line}")
        finally:
            if server.poll() is None:
                server.kill()
                server.wait()

    leaked = [s for s in shm_segments() if s not in shm_before]
    if leaked:
        failures.append(f"leaked /dev/shm segments: {leaked}")

    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print("service smoke OK: byte-identical cells, clean shutdown, no leaks")
    return 0


if __name__ == "__main__":
    sys.exit(main())
